//===- tests/ArithPropertyTest.cpp - Randomized algebraic identities ------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-based tests for the exact-arithmetic layer, driven by the
// testgen Rng so every run replays the identical value stream. BigInt and
// Rational underlie every model, every simplex pivot and every coefficient
// normalization; an algebraic identity failing here invalidates the whole
// solver stack, so these check the ring/field laws directly on values big
// enough to cross the multi-limb paths.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"
#include "testgen/Rng.h"

#include <gtest/gtest.h>

using namespace mucyc;

namespace {

/// Random BigInt with up to \p Limbs32 32-bit limbs (sign included), built
/// from the string path so multi-limb carries are exercised independently
/// of the arithmetic being tested.
BigInt genBig(Rng &R, unsigned Limbs32 = 3) {
  BigInt V(static_cast<int64_t>(R.next() >> 16));
  for (unsigned I = 1, N = 1 + static_cast<unsigned>(R.below(Limbs32)); I < N;
       ++I)
    V = V * BigInt(static_cast<int64_t>(1) << 32) +
        BigInt(static_cast<int64_t>(R.next() & 0xffffffffull));
  return R.oneIn(2) ? -V : V;
}

BigInt genNonZeroBig(Rng &R, unsigned Limbs32 = 3) {
  for (;;) {
    BigInt V = genBig(R, Limbs32);
    if (!V.isZero())
      return V;
  }
}

Rational genRat(Rng &R) {
  return Rational(genBig(R), genNonZeroBig(R, 2));
}

Rational genNonZeroRat(Rng &R) {
  for (;;) {
    Rational V = genRat(R);
    if (!V.isZero())
      return V;
  }
}

constexpr unsigned Trials = 500;

TEST(ArithProperty, BigIntRingLaws) {
  Rng R(Rng::deriveSeed(0xA1, 0));
  for (unsigned I = 0; I < Trials; ++I) {
    BigInt A = genBig(R), B = genBig(R), C = genBig(R);
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ((A * B) * C, A * (B * C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A + (-A), BigInt(0));
    EXPECT_EQ(A - B, A + (-B));
    EXPECT_EQ(A * BigInt(1), A);
    EXPECT_EQ(A * BigInt(0), BigInt(0));
  }
}

TEST(ArithProperty, BigIntDivModIdentities) {
  Rng R(Rng::deriveSeed(0xA1, 1));
  for (unsigned I = 0; I < Trials; ++I) {
    BigInt A = genBig(R), D = genNonZeroBig(R, 2);
    BigInt Q, Rem;
    BigInt::divMod(A, D, Q, Rem);
    EXPECT_EQ(Q * D + Rem, A);            // Division identity.
    EXPECT_LT(Rem.abs(), D.abs());        // Remainder bound.
    EXPECT_EQ(A / D, Q);
    EXPECT_EQ(A % D, Rem);
    // Truncating remainder takes the dividend's sign (or is zero).
    if (!Rem.isZero())
      EXPECT_EQ(Rem.sgn(), A.sgn());
    // Floor division identity with the Euclidean remainder.
    BigInt FQ = A.floorDiv(D);
    BigInt FR = A - FQ * D;
    EXPECT_LT(FR.abs(), D.abs());
    if (!FR.isZero())
      EXPECT_EQ(FR.sgn(), D.sgn()); // Floor remainder follows the divisor.
    BigInt EM = A.euclidMod(D);
    EXPECT_GE(EM, BigInt(0));
    EXPECT_LT(EM, D.abs());
    EXPECT_EQ((A - EM) % D, BigInt(0));
  }
}

TEST(ArithProperty, BigIntGcdLcm) {
  Rng R(Rng::deriveSeed(0xA1, 2));
  for (unsigned I = 0; I < Trials; ++I) {
    BigInt A = genNonZeroBig(R, 2), B = genNonZeroBig(R, 2);
    BigInt G = BigInt::gcd(A, B);
    EXPECT_GT(G, BigInt(0));
    EXPECT_EQ(A % G, BigInt(0));
    EXPECT_EQ(B % G, BigInt(0));
    BigInt L = BigInt::lcm(A, B);
    EXPECT_EQ(L % A, BigInt(0));
    EXPECT_EQ(L % B, BigInt(0));
    EXPECT_EQ(G * L, (A * B).abs()); // gcd * lcm = |a*b|.
    EXPECT_EQ(BigInt::gcd(A / G, B / G), BigInt(1)); // Coprime quotients.
  }
}

TEST(ArithProperty, BigIntToStringRoundTrip) {
  Rng R(Rng::deriveSeed(0xA1, 3));
  for (unsigned I = 0; I < Trials; ++I) {
    BigInt A = genBig(R, 4);
    EXPECT_EQ(BigInt::fromString(A.toString()), A);
  }
}

TEST(ArithProperty, RationalFieldLaws) {
  Rng R(Rng::deriveSeed(0xA1, 4));
  for (unsigned I = 0; I < Trials; ++I) {
    Rational A = genRat(R), B = genRat(R), C = genRat(R);
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A + (-A), Rational(0));
    EXPECT_EQ(A - B, A + (-B));
    Rational NZ = genNonZeroRat(R);
    EXPECT_EQ(NZ * NZ.inverse(), Rational(1));
    EXPECT_EQ(A / NZ, A * NZ.inverse());
  }
}

// Construction always normalizes: coprime, positive denominator, 0 = 0/1.
// Every structural-equality use (hash consing, model comparison) rests on
// this invariant.
TEST(ArithProperty, RationalNormalization) {
  Rng R(Rng::deriveSeed(0xA1, 5));
  for (unsigned I = 0; I < Trials; ++I) {
    Rational A = genRat(R);
    EXPECT_GT(A.den(), BigInt(0));
    EXPECT_EQ(BigInt::gcd(A.num(), A.den()), BigInt(1));
    if (A.isZero())
      EXPECT_TRUE(A.den().isOne());
    // Scaling numerator and denominator never changes the value.
    BigInt K = genNonZeroBig(R, 1);
    EXPECT_EQ(Rational(A.num() * K, A.den() * K), A);
  }
}

TEST(ArithProperty, RationalOrderingConsistency) {
  Rng R(Rng::deriveSeed(0xA1, 6));
  for (unsigned I = 0; I < Trials; ++I) {
    Rational A = genRat(R), B = genRat(R), C = genRat(R);
    EXPECT_EQ(A.compare(B), -B.compare(A));
    if (A < B && B < C)
      EXPECT_LT(A, C);
    if (A < B) { // Order is translation- and positive-scaling-invariant.
      EXPECT_LT(A + C, B + C);
      Rational P = genNonZeroRat(R);
      if (P.sgn() < 0)
        P = -P;
      EXPECT_LT(A * P, B * P);
    }
    // floor/ceil bracket the value.
    EXPECT_LE(Rational(A.floor()), A);
    EXPECT_LT(A, Rational(A.floor() + BigInt(1)));
    EXPECT_GE(Rational(A.ceil()), A);
  }
}

TEST(ArithProperty, RationalToStringRoundTrip) {
  Rng R(Rng::deriveSeed(0xA1, 7));
  for (unsigned I = 0; I < Trials; ++I) {
    Rational A = genRat(R);
    EXPECT_EQ(Rational::fromString(A.toString()), A);
  }
}

//===----------------------------------------------------------------------===
// Small/heap representation frontier
//===----------------------------------------------------------------------===
//
// The fast path keeps values inline in an int64 and spills to heap limbs on
// overflow, so the dangerous inputs sit at the representation boundary:
// ±2^31 (limb edge), ±2^62..2^63 (inline edge, carry chains), and mixed
// small×big operands. Each trial computes once on the fast path and once
// under ScopedForceHeap, and the results must be equal with equal hashes —
// the heap path is the reference semantics.

/// Operand biased to the representation frontier.
BigInt genFrontier(Rng &R) {
  uint64_t Mag;
  switch (R.below(4)) {
  case 0: // Around ±2^31.
    Mag = (uint64_t(1) << 31) + R.below(7) - 3;
    break;
  case 1: // Around ±2^62..2^63: one carry away from spilling.
    Mag = (uint64_t(1) << 62) + (R.next() >> 3);
    break;
  case 2: // Multi-limb: already past the inline domain.
    return genNonZeroBig(R, 3);
  default: // Plain small.
    Mag = R.next() >> 33;
    break;
  }
  BigInt V(static_cast<int64_t>(Mag & INT64_MAX));
  return R.oneIn(2) ? -V : V;
}

/// Recomputes \p Op under the force-heap reference and checks agreement.
template <typename OpT>
void expectMatchesForcedHeap(const char *What, OpT Op) {
  BigInt Fast = Op();
  ScopedForceHeap FH(true);
  BigInt Ref = Op();
  EXPECT_EQ(Fast, Ref) << What << ": fast=" << Fast.toString()
                       << " heap=" << Ref.toString();
  EXPECT_EQ(Fast.hash(), Ref.hash()) << What;
  EXPECT_EQ(Fast.toString(), Ref.toString()) << What;
}

TEST(ArithProperty, FrontierOpsMatchForcedHeapReference) {
  Rng R(Rng::deriveSeed(0xA1, 9));
  for (unsigned I = 0; I < Trials; ++I) {
    BigInt A = genFrontier(R), B = genFrontier(R);
    expectMatchesForcedHeap("add", [&] { return A + B; });
    expectMatchesForcedHeap("sub", [&] { return A - B; });
    expectMatchesForcedHeap("mul", [&] { return A * B; });
    expectMatchesForcedHeap("neg", [&] { return -A; });
    expectMatchesForcedHeap("gcd", [&] { return BigInt::gcd(A, B); });
    if (!B.isZero()) {
      expectMatchesForcedHeap("quot", [&] { return A / B; });
      expectMatchesForcedHeap("rem", [&] { return A % B; });
      expectMatchesForcedHeap("floorDiv", [&] { return A.floorDiv(B); });
      expectMatchesForcedHeap("euclidMod", [&] { return A.euclidMod(B); });
    }
    // Comparison must agree across every representation pairing.
    int CFast = A.compare(B);
    {
      ScopedForceHeap FH(true);
      BigInt HA = A + BigInt(0), HB = B + BigInt(0); // Heap-rep copies.
      EXPECT_EQ(HA.compare(HB), CFast);
      EXPECT_EQ(A.compare(HB), CFast); // Mixed small vs heap.
      EXPECT_EQ(HA.compare(B), CFast); // Mixed heap vs small.
    }
  }
}

TEST(ArithProperty, CarryChainAcrossInlineEdge) {
  // ±2^62..2^63 chains: repeatedly push a value across the inline edge and
  // back; every intermediate must match the forced-heap reference.
  Rng R(Rng::deriveSeed(0xA1, 10));
  for (unsigned I = 0; I < Trials / 5; ++I) {
    int64_t Start = static_cast<int64_t>((uint64_t(1) << 62) + (R.next() >> 3));
    BigInt Step(static_cast<int64_t>(1 + R.below(1000)));
    auto Chain = [&] {
      BigInt V{Start};
      for (int K = 0; K < 8; ++K)
        V = V + V;      // Doubling: overflows inline within 2 steps.
      for (int K = 0; K < 8; ++K) {
        BigInt Q, Rem;
        BigInt::divMod(V, BigInt(2), Q, Rem);
        V = Q - Step;   // Walk back down across the edge.
      }
      return V;
    };
    expectMatchesForcedHeap("carry-chain", Chain);
  }
}

TEST(ArithProperty, MixedSmallBigDivModGcd) {
  // Mixed small×big operands: one side inline, the other multi-limb.
  Rng R(Rng::deriveSeed(0xA1, 11));
  for (unsigned I = 0; I < Trials; ++I) {
    BigInt Small(static_cast<int64_t>(R.next() >> 32) + 1);
    BigInt Big = genNonZeroBig(R, 3);
    expectMatchesForcedHeap("mixed-gcd-sb",
                            [&] { return BigInt::gcd(Small, Big); });
    expectMatchesForcedHeap("mixed-gcd-bs",
                            [&] { return BigInt::gcd(Big, Small); });
    expectMatchesForcedHeap("mixed-quot", [&] { return Big / Small; });
    expectMatchesForcedHeap("mixed-rem", [&] { return Big % Small; });
    BigInt Q, Rem;
    BigInt::divMod(Big, Small, Q, Rem);
    EXPECT_EQ(Q * Small + Rem, Big);
    // Small dividend, big divisor: quotient 0 (or ±1 at the sign edge).
    expectMatchesForcedHeap("mixed-quot-rev", [&] { return Small / Big; });
  }
}

TEST(ArithProperty, FrontierRationalsMatchForcedHeap) {
  Rng R(Rng::deriveSeed(0xA1, 12));
  for (unsigned I = 0; I < Trials / 2; ++I) {
    BigInt NA = genFrontier(R), DA = genFrontier(R);
    BigInt NB = genFrontier(R), DB = genFrontier(R);
    if (DA.isZero() || DB.isZero())
      continue;
    Rational FastSum = Rational(NA, DA) + Rational(NB, DB);
    Rational FastProd = Rational(NA, DA) * Rational(NB, DB);
    int FastCmp = Rational(NA, DA).compare(Rational(NB, DB));
    ScopedForceHeap FH(true);
    Rational RefSum = Rational(NA, DA) + Rational(NB, DB);
    Rational RefProd = Rational(NA, DA) * Rational(NB, DB);
    EXPECT_EQ(FastSum, RefSum);
    EXPECT_EQ(FastSum.hash(), RefSum.hash());
    EXPECT_EQ(FastProd, RefProd);
    EXPECT_EQ(Rational(NA, DA).compare(Rational(NB, DB)), FastCmp);
  }
}

// Delta-rationals order lexicographically: the infinitesimal only breaks
// ties of the real part (the simplex's strict-bound encoding relies on
// exactly this).
TEST(ArithProperty, DeltaRationalOrdering) {
  Rng R(Rng::deriveSeed(0xA1, 8));
  for (unsigned I = 0; I < Trials; ++I) {
    Rational A = genRat(R), B = genRat(R), DA = genRat(R), DB = genRat(R);
    DeltaRational X(A, DA), Y(B, DB);
    if (A != B)
      EXPECT_EQ(X < Y, A < B);
    else
      EXPECT_EQ(X < Y, DA < DB);
    EXPECT_EQ((X + Y) - Y, X);
  }
}

} // namespace
