//===- tests/BigIntTest.cpp - Arbitrary-precision integer tests -----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/Error.h"

#include <gtest/gtest.h>

#include <random>

using namespace mucyc;

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).toString(), "0");
  EXPECT_EQ(BigInt(42).toString(), "42");
  EXPECT_EQ(BigInt(-7).toString(), "-7");
  EXPECT_EQ(BigInt(INT64_MAX).toString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).toString(), "-9223372036854775808");
}

TEST(BigIntTest, FromString) {
  EXPECT_EQ(BigInt::fromString("0"), BigInt(0));
  EXPECT_EQ(BigInt::fromString("-123"), BigInt(-123));
  BigInt Big = BigInt::fromString("123456789012345678901234567890");
  EXPECT_EQ(Big.toString(), "123456789012345678901234567890");
  EXPECT_EQ((Big - Big).toString(), "0");
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(2), BigInt(10));
  EXPECT_EQ(BigInt(0), -BigInt(0));
  EXPECT_TRUE(BigInt(7) >= BigInt(7));
}

TEST(BigIntTest, Arithmetic) {
  EXPECT_EQ(BigInt(3) + BigInt(4), BigInt(7));
  EXPECT_EQ(BigInt(3) - BigInt(4), BigInt(-1));
  EXPECT_EQ(BigInt(-3) * BigInt(4), BigInt(-12));
  EXPECT_EQ(BigInt(-3) * BigInt(-4), BigInt(12));
  // Large multiplication round trip.
  BigInt A = BigInt::fromString("99999999999999999999");
  EXPECT_EQ((A * A).toString(), "9999999999999999999800000000000000000001");
}

TEST(BigIntTest, DivModTruncated) {
  // C semantics: quotient toward zero, remainder follows dividend.
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
}

TEST(BigIntTest, FloorDivAndEuclidMod) {
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(2)), BigInt(3));
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(2)), BigInt(-4));
  EXPECT_EQ(BigInt(-7).euclidMod(BigInt(2)), BigInt(1));
  EXPECT_EQ(BigInt(-8).euclidMod(BigInt(2)), BigInt(0));
  EXPECT_EQ(BigInt(-7).euclidMod(BigInt(-2)), BigInt(1));
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_EQ(BigInt::lcm(BigInt(0), BigInt(6)), BigInt(0));
}

TEST(BigIntTest, ToInt64Bounds) {
  int64_t V = 0;
  EXPECT_TRUE(BigInt(INT64_MAX).toInt64(V));
  EXPECT_EQ(V, INT64_MAX);
  EXPECT_TRUE(BigInt(INT64_MIN).toInt64(V));
  EXPECT_EQ(V, INT64_MIN);
  BigInt Over = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(Over.toInt64(V));
  BigInt Under = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_FALSE(Under.toInt64(V));
}

/// Property sweep: all ring operations agree with 64-bit arithmetic on
/// values small enough not to overflow.
class BigIntPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BigIntPropertyTest, AgreesWithInt64) {
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<int64_t> Dist(-1000000, 1000000);
  for (int I = 0; I < 500; ++I) {
    int64_t A = Dist(Rng), B = Dist(Rng);
    EXPECT_EQ(BigInt(A) + BigInt(B), BigInt(A + B));
    EXPECT_EQ(BigInt(A) - BigInt(B), BigInt(A - B));
    EXPECT_EQ(BigInt(A) * BigInt(B), BigInt(A * B));
    EXPECT_EQ(BigInt(A).compare(BigInt(B)), A < B ? -1 : A > B ? 1 : 0);
    if (B != 0) {
      EXPECT_EQ(BigInt(A) / BigInt(B), BigInt(A / B));
      EXPECT_EQ(BigInt(A) % BigInt(B), BigInt(A % B));
      // divMod identity.
      BigInt Q, R;
      BigInt::divMod(BigInt(A), BigInt(B), Q, R);
      EXPECT_EQ(Q * BigInt(B) + R, BigInt(A));
      // Euclidean remainder in range.
      BigInt E = BigInt(A).euclidMod(BigInt(B));
      EXPECT_FALSE(E.isNeg());
      EXPECT_LT(E, BigInt(B).abs());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(BigIntTest, FromStringRaisesInputError) {
  // Malformed numerals raise the typed InputError of the PR-4 taxonomy
  // instead of tripping an assert; parsers convert it into a diagnostic.
  for (const char *Bad : {"", "-", "12a", "1.5", "--3", "3-", " 42"}) {
    try {
      BigInt::fromString(Bad);
      FAIL() << "fromString accepted '" << Bad << "'";
    } catch (const MucycError &E) {
      EXPECT_EQ(E.code(), ErrorCode::InputError) << Bad;
      EXPECT_FALSE(E.detail().empty());
    }
  }
}

TEST(BigIntTest, SmallHeapFrontier) {
  // Values straddling the inline-int64 boundary: INT64_MAX is the largest
  // small value, INT64_MIN lives on the heap but still round-trips.
  BigInt Max(INT64_MAX), Min(INT64_MIN);
  EXPECT_EQ((Max + BigInt(1)).toString(), "9223372036854775808");
  EXPECT_EQ((Max + BigInt(1)) - BigInt(1), Max);
  EXPECT_EQ(-Min, Max + BigInt(1));
  EXPECT_EQ(Min.abs(), Max + BigInt(1));
  EXPECT_EQ(Min + Max, BigInt(-1));
  // INT64_MIN / -1 overflows machine division; BigInt must not.
  EXPECT_EQ(Min / BigInt(-1), Max + BigInt(1));
  EXPECT_EQ(Min % BigInt(-1), BigInt(0));
}

TEST(BigIntTest, ForceHeapMatchesFastPath) {
  // The force-heap knob routes everything onto limb vectors; results,
  // hashes and comparisons must be indistinguishable from the fast path.
  std::mt19937 Rng(7);
  std::uniform_int_distribution<int64_t> Dist(-3000000000ll, 3000000000ll);
  for (int I = 0; I < 200; ++I) {
    int64_t A = Dist(Rng), B = Dist(Rng);
    BigInt FastSum = BigInt(A) + BigInt(B);
    BigInt FastProd = BigInt(A) * BigInt(B);
    BigInt FastGcd = BigInt::gcd(BigInt(A), BigInt(B));
    ScopedForceHeap FH(true);
    BigInt SlowSum = BigInt(A) + BigInt(B);
    BigInt SlowProd = BigInt(A) * BigInt(B);
    BigInt SlowGcd = BigInt::gcd(BigInt(A), BigInt(B));
    // Mixed-representation equality, ordering, hashing and printing.
    EXPECT_EQ(FastSum, SlowSum);
    EXPECT_EQ(FastSum.hash(), SlowSum.hash());
    EXPECT_EQ(FastSum.compare(SlowSum), 0);
    EXPECT_EQ(FastSum.toString(), SlowSum.toString());
    EXPECT_EQ(FastProd, SlowProd);
    EXPECT_EQ(FastProd.hash(), SlowProd.hash());
    EXPECT_EQ(FastGcd, SlowGcd);
    EXPECT_EQ(FastGcd.hash(), SlowGcd.hash());
  }
}

TEST(BigIntTest, StringRoundTripLarge) {
  std::mt19937 Rng(99);
  for (int I = 0; I < 50; ++I) {
    std::string S;
    if (Rng() % 2)
      S += "-";
    S += static_cast<char>('1' + Rng() % 9);
    int Len = 1 + Rng() % 60;
    for (int J = 0; J < Len; ++J)
      S += static_cast<char>('0' + Rng() % 10);
    EXPECT_EQ(BigInt::fromString(S).toString(), S);
  }
}
