//===- tests/ExportTest.cpp - Export / frontend round trips ---------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-pipeline round trips: each small-suite instance is exported to
/// SMT-LIB2 text, parsed back, pushed through preprocessing and the general
/// normalizer, and solved — the result must match the instance's ground
/// truth. This exercises parser + printer + preprocessor + normalizer +
/// solver together.
///
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "chc/Export.h"
#include "chc/Parser.h"
#include "solver/ChcSolve.h"

#include <gtest/gtest.h>

using namespace mucyc;

TEST(ExportTest, ThreeClauseShape) {
  TermContext C;
  NormalizedChc N = paperExample5(C);
  ChcSystem Sys = chcFromNormalized(C, N);
  ASSERT_EQ(Sys.clauses().size(), 3u);
  EXPECT_TRUE(Sys.clauses()[0].isFact());
  EXPECT_EQ(Sys.clauses()[1].Body.size(), 2u);
  EXPECT_TRUE(Sys.clauses()[2].isQuery());
  EXPECT_FALSE(Sys.isLinear());
}

TEST(ExportTest, SmtLibParsesBack) {
  TermContext C;
  NormalizedChc N = paperExample10(C, 5);
  std::string Text = exportSmtLib(C, N);
  TermContext C2;
  ParseResult R = parseChc(C2, Text);
  ASSERT_TRUE(R.Ok) << R.Error << "\n" << Text;
  EXPECT_EQ(R.System->numPreds(), 1u);
  EXPECT_EQ(R.System->clauses().size(), 3u);
}

class ExportRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ExportRoundTripTest, SolveAfterReparse) {
  std::vector<BenchInstance> Suite = buildSmallSuite();
  const BenchInstance &B = Suite[GetParam()];
  TermContext C;
  NormalizedChc N = B.Build(C);
  std::string Text = exportSmtLib(C, N, "Reach");

  TermContext C2;
  ParseResult R = parseChc(C2, Text);
  ASSERT_TRUE(R.Ok) << R.Error;
  SolverOptions Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.TimeoutMs = 20000;
  Opts.VerifyResult = true;
  ChcSolution Sol;
  SolverResult Res = solveChcSystem(*R.System, Opts, /*Preprocess=*/true,
                                    &Sol);
  if (Res.Status != ChcStatus::Unknown) {
    EXPECT_EQ(Res.Status, B.Expected) << B.Name;
    if (Res.Status == ChcStatus::Sat)
      EXPECT_TRUE(R.System->checkSolution(Sol)) << B.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, ExportRoundTripTest,
                         ::testing::Range(0, 8));
