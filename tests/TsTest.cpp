//===- tests/TsTest.cpp - BTOR2 frontend and encoder tests ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The transition-system frontend end to end: the checked-in golden .btor2
// corpus must produce its annotated verdict under every engine with the
// independent Verify certification on, the generator's whole output space
// must survive print -> parse -> re-encode alpha-fingerprint-identically,
// and a BTOR2 submission must flow through the SolveRequest result store
// exactly like an SMT-LIB2 one — including warm hits on alpha-renamed
// resubmissions.
//
//===----------------------------------------------------------------------===//

#include "chc/Fingerprint.h"
#include "runtime/Request.h"
#include "testgen/TsGen.h"
#include "ts/Btor2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace mucyc;

namespace {

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  EXPECT_TRUE(In.good()) << "cannot open " << P;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Golden .btor2 files in tests/corpus/, sorted for deterministic order.
std::vector<std::filesystem::path> goldenFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(MUCYC_TEST_CORPUS_DIR))
    if (Entry.path().extension() == ".btor2" &&
        Entry.path().filename().string().rfind("ok-", 0) == 0)
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// First-line annotation "; expect: sat|unsat" of a golden file.
ChcStatus expectedVerdict(const std::string &Text,
                          const std::string &Name) {
  size_t Eol = Text.find('\n');
  std::string First = Text.substr(0, Eol);
  EXPECT_EQ(First.rfind("; expect: ", 0), 0u)
      << Name << ": golden files must start with '; expect: sat|unsat'";
  std::string V = First.substr(10);
  EXPECT_TRUE(V == "sat" || V == "unsat") << Name << ": bad verdict " << V;
  return V == "sat" ? ChcStatus::Sat : ChcStatus::Unsat;
}

ChcSystem parseGolden(TermContext &Ctx, const std::string &Text,
                      const std::string &Name) {
  Btor2Result BR = parseBtor2(Ctx, Text);
  EXPECT_TRUE(BR.Ok) << Name << ": " << BR.Error;
  return BR.Ts->encodeChc();
}

//===----------------------------------------------------------------------===
// Golden corpus: every engine, Verify-certified
//===----------------------------------------------------------------------===

struct EngineCase {
  const char *Name;
  EngineKind Kind;
};

const EngineCase Engines[] = {
    {"Ret", EngineKind::Ret},
    {"Yld", EngineKind::Yld},
    {"SpacerTs", EngineKind::SpacerTs},
    {"Solve", EngineKind::Solve},
};

TEST(TsGolden, AllEnginesAgreeWithAnnotationsCertified) {
  std::vector<std::filesystem::path> Files = goldenFiles();
  ASSERT_FALSE(Files.empty())
      << "no ok-*.btor2 goldens in " MUCYC_TEST_CORPUS_DIR;
  for (const auto &P : Files) {
    std::string Text = readFile(P);
    ChcStatus Want = expectedVerdict(Text, P.filename().string());
    for (const EngineCase &E : Engines) {
      SCOPED_TRACE(P.filename().string() + " engine=" + E.Name);
      TermContext Ctx;
      ChcSystem Sys = parseGolden(Ctx, Text, P.filename().string());
      SolverOptions Opts;
      Opts.Engine = E.Kind;
      Opts.VerifyResult = true;
      Opts.MaxRefineSteps = 20000; // Divergence fails the test, not CI.
      SolverResult R = solveChcSystem(Sys, Opts);
      EXPECT_EQ(R.Status, Want) << chcStatusName(R.Status);
      EXPECT_FALSE(R.VerifyFailed) << R.VerifyNote;
    }
  }
}

// The golden corpus must exercise both verdicts and all three variable
// flavors the frontend supports (bitvec state, input, native int).
TEST(TsGolden, CorpusCoversBothVerdictsAndIntSorts) {
  bool SawSat = false, SawUnsat = false, SawInt = false, SawInput = false;
  for (const auto &P : goldenFiles()) {
    std::string Text = readFile(P);
    ChcStatus Want = expectedVerdict(Text, P.filename().string());
    (Want == ChcStatus::Sat ? SawSat : SawUnsat) = true;
    if (Text.find("sort int") != std::string::npos)
      SawInt = true;
    if (Text.find(" input ") != std::string::npos)
      SawInput = true;
  }
  EXPECT_TRUE(SawSat && SawUnsat && SawInt && SawInput);
}

//===----------------------------------------------------------------------===
// Encoder shape
//===----------------------------------------------------------------------===

// {iota, tau, beta}: one predicate, one init clause, one transition clause,
// one query per bad — the paper's linear normal form by construction, so
// normalize() has no copying or QE to do.
TEST(TsEncoder, ProducesLinearNormalFormShape) {
  const char *Text = "1 sort bitvec 4\n"
                     "2 state 1 c\n"
                     "3 input 1 step\n"
                     "4 zero 1\n"
                     "5 init 1 2 4\n"
                     "6 add 1 2 3\n"
                     "7 next 1 2 6\n"
                     "8 sort bitvec 1\n"
                     "9 constd 1 12\n"
                     "10 ugt 8 2 9\n"
                     "11 bad 10\n"
                     "12 constd 1 3\n"
                     "13 ult 8 2 12\n"
                     "14 bad 13\n";
  TermContext Ctx;
  Btor2Result BR = parseBtor2(Ctx, Text);
  ASSERT_TRUE(BR.Ok) << BR.Error;
  ChcSystem Sys = BR.Ts->encodeChc();
  ASSERT_EQ(Sys.numPreds(), 1u);
  // State + input tuple, all Int-sorted.
  EXPECT_EQ(Sys.pred(PredId(0)).ArgSorts.size(), 2u);
  for (Sort S : Sys.pred(PredId(0)).ArgSorts)
    EXPECT_EQ(S, Sort::Int);
  ASSERT_EQ(Sys.clauses().size(), 4u); // init + trans + 2 queries.
  unsigned Facts = 0, Rules = 0, Queries = 0;
  for (const Clause &C : Sys.clauses()) {
    if (C.isQuery())
      ++Queries;
    else if (C.Body.empty())
      ++Facts;
    else
      ++Rules;
  }
  EXPECT_EQ(Facts, 1u);
  EXPECT_EQ(Rules, 1u);
  EXPECT_EQ(Queries, 2u);
}

TEST(TsEncoder, RequiresABadProperty) {
  TermContext Ctx;
  TransitionSystem Ts(Ctx);
  Ts.addState("s", 4);
  EXPECT_THROW(Ts.encodeChc(), MucycError);
}

//===----------------------------------------------------------------------===
// Generator round-trip properties (200 fixed seeds)
//===----------------------------------------------------------------------===

TEST(TsRoundTrip, PrintParseReEncodeFingerprintStable) {
  for (uint64_t I = 0; I < 200; ++I) {
    SCOPED_TRACE("seed=" + std::to_string(I));
    Rng R(Rng::deriveSeed(0x7517, I));
    Btor2Program Prog = genBtor2(R, TsGenKnobs{});
    std::string Text = printBtor2(Prog);

    TermContext C1;
    Btor2Result B1 = parseBtor2(C1, Text);
    ASSERT_TRUE(B1.Ok) << B1.Error << "\n" << Text;
    // Token-level print is a fixed point.
    EXPECT_EQ(printBtor2(B1.Program), Text);

    // Re-encoding from an independent context (different VarIds, different
    // interning order) may not move the canonical fingerprint.
    TermContext C2;
    Btor2Result B2 = parseBtor2(C2, Text);
    ASSERT_TRUE(B2.Ok);
    ChcSystem S1 = B1.Ts->encodeChc();
    ChcSystem S2 = B2.Ts->encodeChc();
    ChcFingerprint F1 = fingerprintNormalized(C1, normalize(S1).Sys);
    ChcFingerprint F2 = fingerprintNormalized(C2, normalize(S2).Sys);
    EXPECT_EQ(F1.hex(), F2.hex()) << Text;
  }
}

//===----------------------------------------------------------------------===
// Through the unified request API
//===----------------------------------------------------------------------===

const char SafeCounterBtor2[] = "1 sort bitvec 8\n"
                                "2 state 1 count\n"
                                "3 zero 1\n"
                                "4 init 1 2 3\n"
                                "5 constd 1 200\n"
                                "6 sort bitvec 1\n"
                                "7 ult 6 2 5\n"
                                "8 inc 1 2\n"
                                "9 ite 1 7 8 2\n"
                                "10 next 1 2 9\n"
                                "11 constd 1 250\n"
                                "12 eq 6 2 11\n"
                                "13 bad 12\n";

/// Same machine, alpha-renamed symbol (and re-annotated ids preserved):
/// must fingerprint identically and be served warm.
const char SafeCounterBtor2Renamed[] = "1 sort bitvec 8\n"
                                       "2 state 1 kounter\n"
                                       "3 zero 1\n"
                                       "4 init 1 2 3\n"
                                       "5 constd 1 200\n"
                                       "6 sort bitvec 1\n"
                                       "7 ult 6 2 5\n"
                                       "8 inc 1 2\n"
                                       "9 ite 1 7 8 2\n"
                                       "10 next 1 2 9\n"
                                       "11 constd 1 250\n"
                                       "12 eq 6 2 11\n"
                                       "13 bad 12\n";

TEST(TsRequest, Btor2IsAutoSniffedAndSolved) {
  SolveRequest Req =
      SolveRequest::fromText(SafeCounterBtor2, SolverOptions{});
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Sat);
}

TEST(TsRequest, Btor2WarmHitOnAlphaRenamedResubmission) {
  ResultStore Store; // Memory tier only.
  SolveResponse Cold = solveRequest(
      SolveRequest::fromText(SafeCounterBtor2, SolverOptions{}), &Store,
      nullptr);
  ASSERT_EQ(Cold.Status, ChcStatus::Sat);
  EXPECT_EQ(Cold.Cache, CacheSource::None);
  ASSERT_FALSE(Cold.Fingerprint.empty());

  SolveResponse Warm = solveRequest(
      SolveRequest::fromText(SafeCounterBtor2Renamed, SolverOptions{}),
      &Store, nullptr);
  EXPECT_EQ(Warm.Status, ChcStatus::Sat);
  EXPECT_EQ(Warm.Cache, CacheSource::Memory);
  EXPECT_EQ(Warm.Attempts, 0u); // Served, not solved.
  EXPECT_TRUE(Warm.CacheVerified);
  EXPECT_EQ(Warm.Fingerprint, Cold.Fingerprint);
}

TEST(TsRequest, ExplicitFormatOverridesSniff) {
  // BTOR2 text forced through the SMT-LIB2 parser must fail as input
  // error, not crash; and the reverse: --format btor2 on SMT-LIB2 text.
  SolveRequest AsSmt =
      SolveRequest::fromText(SafeCounterBtor2, SolverOptions{},
                             /*Preprocess=*/true, InputFormat::SmtLib2);
  SolveResponse R1 = solveRequest(AsSmt);
  EXPECT_EQ(R1.Status, ChcStatus::Unknown);
  EXPECT_EQ(R1.Error.Code, ErrorCode::InputError);

  SolveRequest AsBtor = SolveRequest::fromText(
      "(set-logic HORN)\n(check-sat)\n", SolverOptions{},
      /*Preprocess=*/true, InputFormat::Btor2);
  SolveResponse R2 = solveRequest(AsBtor);
  EXPECT_EQ(R2.Status, ChcStatus::Unknown);
  EXPECT_EQ(R2.Error.Code, ErrorCode::InputError);
}

//===----------------------------------------------------------------------===
// Malformed-input corpus
//===----------------------------------------------------------------------===

// Every bad-ts-*.btor2 file must be rejected in-band with a diagnostic —
// parseBtor2 never asserts and never throws for input-shaped failures.
TEST(TsMalformed, BadCorpusRejectedWithDiagnostics) {
  unsigned Seen = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(MUCYC_TEST_CORPUS_DIR)) {
    std::string Name = Entry.path().filename().string();
    if (Entry.path().extension() != ".btor2" ||
        Name.rfind("bad-", 0) != 0)
      continue;
    SCOPED_TRACE(Name);
    ++Seen;
    TermContext Ctx;
    Btor2Result BR = parseBtor2(Ctx, readFile(Entry.path()));
    EXPECT_FALSE(BR.Ok);
    EXPECT_FALSE(BR.Error.empty()) << "rejection must carry a diagnostic";
  }
  EXPECT_GE(Seen, 8u) << "bad-ts corpus shrank";
}

} // namespace
