//===- tests/WorkerTest.cpp - Forked worker-process tier tests ------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the crash-isolation tier: clean isolated solves matching inline
// verdicts, the x-crash test directives (segfault, abort, plain exit,
// wedge, CPU burn, allocation bomb) each classifying into the right
// WorkerCrashed* breadcrumb, the parent-side crash ladder recovering with
// a degraded retry, cancellation reaching a forked worker, Always-mode
// requests warming the disk store from inside the child, and the worker
// wire protocol (encode/decode round trip, in-process child serve).
//
//===----------------------------------------------------------------------===//

#include "runtime/Worker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include <unistd.h>

using namespace mucyc;

namespace {

const char *CounterSat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (< x 5) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 100)) false)))
(check-sat)
)";

const char *CounterUnsat = R"((set-logic HORN)
(declare-fun Inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (Inv x))))
(assert (forall ((x Int) (y Int))
  (=> (and (Inv x) (= y (+ x 1))) (Inv y))))
(assert (forall ((x Int)) (=> (and (Inv x) (> x 2)) false)))
(check-sat)
)";

struct TempDir {
  std::string Path;
  explicit TempDir(const char *Tag) {
    Path = (std::filesystem::temp_directory_path() /
            (std::string("mucyc-worker-test-") + Tag + "-" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

SolveRequest isolatedRequest(const char *Text, IsolateMode Mode) {
  SolveRequest Req = SolveRequest::fromText(Text, SolverOptions());
  Req.Opts.Isolate = Mode;
  Req.Opts.MaxRetries = 0;
  // Bound every engine run so a test instance can never hang the suite.
  Req.Opts.MaxRefineSteps = 2000;
  return Req;
}

} // namespace

//===----------------------------------------------------------------------===//
// Clean isolated solves
//===----------------------------------------------------------------------===//

TEST(WorkerTest, CrashIsolatedSolveMatchesInlineVerdict) {
  SolveResponse Inline = solveRequest(isolatedRequest(CounterSat,
                                                      IsolateMode::None));
  SolveResponse Isolated = solveRequest(isolatedRequest(CounterSat,
                                                        IsolateMode::Crash));
  EXPECT_EQ(Inline.Status, ChcStatus::Sat);
  EXPECT_EQ(Isolated.Status, ChcStatus::Sat);
  EXPECT_GE(Isolated.Attempts, 1u);
  EXPECT_FALSE(Isolated.Error.isError());

  SolveResponse Unsat = solveRequest(isolatedRequest(CounterUnsat,
                                                     IsolateMode::Crash));
  EXPECT_EQ(Unsat.Status, ChcStatus::Unsat);
}

TEST(WorkerTest, CrashModeAdmitsWorkerCertificateIntoParentStore) {
  ResultStore Store;
  SolveResponse Cold =
      solveRequest(isolatedRequest(CounterSat, IsolateMode::Crash), &Store, nullptr);
  ASSERT_EQ(Cold.Status, ChcStatus::Sat);
  ASSERT_FALSE(Cold.Fingerprint.empty());
  // The parent re-verified the child's certificate text and admitted it.
  EXPECT_GE(Store.counters().Inserts, 1u);
  // A resubmission is served warm without forking anything.
  SolveResponse Warm =
      solveRequest(isolatedRequest(CounterSat, IsolateMode::Crash), &Store, nullptr);
  EXPECT_EQ(Warm.Status, ChcStatus::Sat);
  EXPECT_EQ(Warm.Attempts, 0u);
  EXPECT_EQ(Warm.Cache, CacheSource::Memory);
}

TEST(WorkerTest, AlwaysModeWarmsTheDiskStoreFromInsideTheChild) {
  TempDir Dir("always");
  ResultStore Store(Dir.Path);
  SolveResponse Cold =
      solveRequest(isolatedRequest(CounterSat, IsolateMode::Always), &Store, nullptr);
  ASSERT_EQ(Cold.Status, ChcStatus::Sat);
  EXPECT_GE(Cold.Attempts, 1u);
  // The second request forks a fresh child whose private store finds the
  // first child's durably-written entry on disk.
  SolveResponse Warm =
      solveRequest(isolatedRequest(CounterSat, IsolateMode::Always), &Store, nullptr);
  EXPECT_EQ(Warm.Status, ChcStatus::Sat);
  EXPECT_EQ(Warm.Attempts, 0u);
  EXPECT_EQ(Warm.Cache, CacheSource::Disk);
  EXPECT_TRUE(Warm.CacheVerified);
}

//===----------------------------------------------------------------------===//
// Crash classification
//===----------------------------------------------------------------------===//

TEST(WorkerTest, SegfaultingWorkerYieldsTypedUnknown) {
  SolveRequest Req = isolatedRequest(CounterSat, IsolateMode::Crash);
  Req.TestCrash = "segv";
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::WorkerCrashedSignal);
  EXPECT_NE(R.Error.Detail.find("signal"), std::string::npos);
}

TEST(WorkerTest, AbortingAndExitingWorkersAreClassified) {
  SolveRequest Req = isolatedRequest(CounterSat, IsolateMode::Crash);
  Req.TestCrash = "abort";
  EXPECT_EQ(solveRequest(Req).Error.Code, ErrorCode::WorkerCrashedSignal);

  Req.TestCrash = "exit3";
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Error.Code, ErrorCode::WorkerCrashedSignal);
  EXPECT_NE(R.Error.Detail.find("exit status 3"), std::string::npos);
}

TEST(WorkerTest, CrashLadderRecoversWithADegradedRetry) {
  // The directive fires on the first worker attempt only; with one retry
  // in the budget the respawned (degraded) worker answers clean.
  SolveRequest Req = isolatedRequest(CounterSat, IsolateMode::Crash);
  Req.TestCrash = "segv";
  Req.Opts.MaxRetries = 1;
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Sat);
  EXPECT_GE(R.Attempts, 2u);
  EXPECT_GE(R.Stats.Degradations, 1u);
  EXPECT_GE(R.Stats.Retries, 1u);
}

TEST(WorkerTest, WedgedWorkerIsKilledByTheWatchdog) {
  // "spin" never replies and never burns CPU, so only the deadline
  // watchdog can reap it.
  SolveRequest Req = isolatedRequest(CounterSat, IsolateMode::Crash);
  Req.TestCrash = "spin";
  Req.DeadlineMs = 200;
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::WorkerCrashedWedged);
}

TEST(WorkerTest, CpuBurnTripsHardRlimit) {
  SolveRequest Req = isolatedRequest(CounterSat, IsolateMode::Crash);
  Req.TestCrash = "burn";
  Req.Opts.HardCpuSec = 1;
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::WorkerCrashedRlimit);
}

TEST(WorkerTest, AllocationBombTripsMemRlimit) {
  SolveRequest Req = isolatedRequest(CounterSat, IsolateMode::Crash);
  Req.TestCrash = "oom";
  Req.Opts.HardMemMb = 128;
  SolveResponse R = solveRequest(Req);
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::WorkerCrashedRlimit);
}

TEST(WorkerTest, CancellationReachesAForkedWorker) {
  std::atomic<bool> Cancel{false};
  std::thread Later([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Cancel.store(true, std::memory_order_relaxed);
  });
  SolveRequest Req = isolatedRequest(CounterSat, IsolateMode::Crash);
  Req.TestCrash = "spin"; // Would wedge forever without the cancel.
  SolveResponse R = solveRequest(Req, nullptr, &Cancel);
  Later.join();
  EXPECT_EQ(R.Status, ChcStatus::Unknown);
  EXPECT_EQ(R.Error.Code, ErrorCode::Cancelled);
}

//===----------------------------------------------------------------------===//
// Worker wire protocol
//===----------------------------------------------------------------------===//

TEST(WorkerTest, RequestEncodingRoundTripsThroughChildServe) {
  SolveRequest Req = SolveRequest::fromText(CounterSat, SolverOptions());
  Req.Opts.MaxRefineSteps = 2000;
  Req.WantSolution = true;
  WireMessage M = encodeWorkerRequest(Req, /*StoreDir=*/"", /*TestCrash=*/"");
  EXPECT_EQ(M.Verb, "work");
  EXPECT_EQ(M.Body, CounterSat);

  // Drive the child entry point in-process: a complete "done" reply with a
  // serialized certificate the parent could re-verify.
  std::string Reply = workerChildServe(formatWireMessage(M));
  WireMessage R;
  std::string Err;
  ASSERT_TRUE(parseWireMessage(Reply, R, &Err)) << Err;
  EXPECT_EQ(R.Verb, "done");
  EXPECT_EQ(R.header("status"), "sat");
  EXPECT_FALSE(R.header("cert").empty());
  EXPECT_FALSE(R.header("zsorts").empty());
  EXPECT_FALSE(R.header("config").empty());
  EXPECT_NE(R.Body.find("(define-fun Inv "), std::string::npos) << R.Body;
}

TEST(WorkerTest, CrashDirectiveIsInertOutsideAForkedChild) {
  // x-crash must only fire inside a real worker child; an in-process test
  // of the child entry point survives it and solves normally.
  ASSERT_FALSE(inWorkerChild());
  SolveRequest Req = SolveRequest::fromText(CounterSat, SolverOptions());
  Req.Opts.MaxRefineSteps = 2000;
  WireMessage M = encodeWorkerRequest(Req, "", /*TestCrash=*/"segv");
  std::string Reply = workerChildServe(formatWireMessage(M));
  WireMessage R;
  ASSERT_TRUE(parseWireMessage(Reply, R, nullptr));
  EXPECT_EQ(R.header("status"), "sat");
}

TEST(WorkerTest, MalformedWorkFrameIsATypedInputError) {
  std::string Reply = workerChildServe("not a frame payload");
  WireMessage R;
  ASSERT_TRUE(parseWireMessage(Reply, R, nullptr));
  EXPECT_EQ(R.Verb, "done");
  EXPECT_EQ(R.header("status"), "unknown");
  EXPECT_EQ(R.header("error-code"), "input-error");
}
