(set-logic HORN)
(assert (forall ((x Int)) (=> (and (not)) false)))
