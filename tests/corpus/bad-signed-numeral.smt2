(set-logic HORN)
(assert (forall ((x Int)) (=> (= x -5) false)))
