(set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (and (P x
