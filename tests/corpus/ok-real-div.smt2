; (/ num den) is what Print.cpp emits for non-integral Real constants; the
; parser must round-trip it
(set-logic HORN)
(declare-fun P (Real) Bool)
(assert (forall ((r Real)) (=> (and (= r (/ 5.0 2.0))) (P r))))
(assert (forall ((r Real)) (=> (and (P r) (< r (/ 1.0 2.0))) false)))
(check-sat)
