(set-logic HORN)
(assert (forall ((r Real)) (=> (= r 1.2.3) false)))
