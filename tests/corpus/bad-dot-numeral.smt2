(set-logic HORN)
(assert (forall ((r Real)) (=> (= r .) false)))
