(set-logic HORN)
(assert (forall ((r Real)) (=> (and (= r (/ r 0.0))) false)))
