; regression: zero modulus used to trip mkDivides' positivity assert
(set-logic HORN)
(assert (forall ((x Int)) (=> (and ((_ divisible 0) x)) false)))
