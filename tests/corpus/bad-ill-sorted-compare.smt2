; regression: (< b b) over Bool operands used to trip a builder assert
(set-logic HORN)
(assert (forall ((b Bool)) (=> (and (< b b)) false)))
