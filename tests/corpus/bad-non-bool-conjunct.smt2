; regression: an Int-sorted body conjunct used to trip mkAnd's Bool assert
(set-logic HORN)
(assert (forall ((x Int)) (=> (and x) false)))
