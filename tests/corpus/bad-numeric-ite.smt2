; regression: numeric ite branches used to trip the Bool assert in mkIte
(set-logic HORN)
(assert (forall ((x Int)) (=> (and (= x (ite (> x 0) 1 2))) false)))
