; ((_ divisible d) t) is what Print.cpp emits for divisibility atoms; the
; parser must round-trip it
(set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((x Int)) (=> (and (= x 0)) (P x))))
(assert (forall ((x Int)) (=> (and (P x) ((_ divisible 4) x)) (P (+ x 4)))))
(assert (forall ((x Int)) (=> (and (P x) (not ((_ divisible 2) x))) false)))
(check-sat)
