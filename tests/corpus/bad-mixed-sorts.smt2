; regression: Int/Real comparison used to trip the arithSort assert
(set-logic HORN)
(assert (forall ((x Int)) (=> (and (< x 2.5)) false)))
