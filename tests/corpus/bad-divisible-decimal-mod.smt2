(set-logic HORN)
(assert (forall ((x Int)) (=> ((_ divisible 1.5) x) false)))
