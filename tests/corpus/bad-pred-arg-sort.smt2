; regression: ill-sorted predicate argument used to trip addClause asserts
(set-logic HORN)
(declare-fun P (Int) Bool)
(assert (forall ((r Real)) (=> (and (P r) (> r 0.0)) false)))
