; regression: redeclaring a predicate used to trip an assert in addPred
(set-logic HORN)
(declare-fun P (Int) Bool)
(declare-fun P (Int Int) Bool)
(assert (forall ((x Int)) (=> (P x) false)))
