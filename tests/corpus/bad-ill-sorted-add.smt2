; regression: (+ x true) used to trip the same-sort assert in mkAdd
(set-logic HORN)
(assert (forall ((x Int)) (=> (and (= x (+ x true))) false)))
