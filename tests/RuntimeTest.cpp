//===- tests/RuntimeTest.cpp - Parallel runtime tests ---------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the runtime subsystem: cancellation-token hierarchy, thread-pool
// completion guarantees, scheduler determinism across worker counts,
// cancellation latency of a diverging engine, and portfolio races.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "runtime/Cancel.h"
#include "runtime/Portfolio.h"
#include "runtime/Scheduler.h"
#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace mucyc;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

TEST(CancelTokenTest, RequestPropagatesToDescendants) {
  auto Root = CancelToken::create();
  auto Child = Root->child();
  auto Grandchild = Child->child();
  EXPECT_FALSE(Root->cancelled());
  EXPECT_FALSE(Grandchild->cancelled());

  Root->request();
  EXPECT_TRUE(Root->cancelled());
  EXPECT_TRUE(Child->cancelled());
  EXPECT_TRUE(Grandchild->cancelled());
  // The raw flag observed by the compute layers agrees with the token.
  EXPECT_TRUE(Grandchild->flag()->load());
}

TEST(CancelTokenTest, ChildCancellationDoesNotPropagateUp) {
  auto Root = CancelToken::create();
  auto A = Root->child();
  auto B = Root->child();
  A->request();
  EXPECT_TRUE(A->cancelled());
  EXPECT_FALSE(Root->cancelled());
  EXPECT_FALSE(B->cancelled());
}

TEST(CancelTokenTest, ChildOfCancelledTokenIsBornCancelled) {
  auto Root = CancelToken::create();
  Root->request();
  auto Late = Root->child();
  EXPECT_TRUE(Late->cancelled());
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryPostedJob) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(4);
    EXPECT_EQ(Pool.size(), 4u);
    for (int I = 0; I < 100; ++I)
      Pool.post([&Count] { Count.fetch_add(1); });
  } // Destructor finishes the queue before joining.
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, DrainWaitsForCompletion) {
  std::atomic<int> Count{0};
  ThreadPool Pool(2);
  for (int I = 0; I < 32; ++I)
    Pool.post([&Count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Count.fetch_add(1);
    });
  Pool.drain();
  EXPECT_EQ(Count.load(), 32);
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, ParallelResultsMatchSequential) {
  // The core determinism claim behind `--jobs N`: every job solves in a
  // private TermContext, and outcomes land in submission-order slots, so
  // one worker and eight workers must produce the identical sequence.
  //
  // Completed runs are bit-for-bit deterministic; a job that hits its
  // wall-clock deadline is not (its partial progress depends on how much
  // CPU it got). So the comparison batch is self-calibrated: a sequential
  // pre-pass selects instances that finish definitively and fast on this
  // machine, and the deadline is set far above the oversubscribed
  // worst case so the parallel pass completes them too.
  std::vector<BenchInstance> Suite = buildSmallSuite();
  const char *Configs[] = {"Ret(T,MBP(1))", "Yld(T,MBP(1))"};

  std::vector<BenchInstance> Fast;
  for (const BenchInstance &B : Suite) {
    bool AllFast = true;
    for (const char *Cfg : Configs) {
      auto Opts = SolverOptions::parse(Cfg);
      ASSERT_TRUE(Opts.has_value());
      std::vector<SolveJob> One{SolveJob{B.Build, *Opts, 2000}};
      SolveJobOutcome O = Scheduler(1).run(One)[0];
      if (O.Status == ChcStatus::Unknown || O.Seconds > 1.0)
        AllFast = false;
    }
    if (AllFast)
      Fast.push_back(B);
  }
  ASSERT_GE(Fast.size(), 4u) << "small suite unexpectedly slow";

  std::vector<SolveJob> Batch;
  for (const char *Cfg : Configs) {
    auto Opts = SolverOptions::parse(Cfg);
    ASSERT_TRUE(Opts.has_value());
    for (const BenchInstance &B : Fast)
      Batch.push_back(SolveJob{B.Build, *Opts, 300000});
  }

  std::vector<SolveJobOutcome> Seq = Scheduler(1).run(Batch);
  std::vector<SolveJobOutcome> Par = Scheduler(8).run(Batch);
  ASSERT_EQ(Seq.size(), Batch.size());
  ASSERT_EQ(Par.size(), Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    EXPECT_EQ(Seq[I].Status, Par[I].Status) << "job " << I;
    EXPECT_EQ(Seq[I].Depth, Par[I].Depth) << "job " << I;
    EXPECT_EQ(Seq[I].Stats.SmtChecks, Par[I].Stats.SmtChecks) << "job " << I;
  }
  // The suite has ground truth: parallel answers are also *correct*.
  for (size_t C = 0; C < 2; ++C)
    for (size_t I = 0; I < Fast.size(); ++I)
      EXPECT_EQ(Par[C * Fast.size() + I].Status, Fast[I].Expected)
          << Fast[I].Name;
}

TEST(SchedulerTest, PreCancelledBatchExpiresImmediately) {
  // A cancelled batch still fills every slot, but jobs expire on their
  // first budget check instead of running — even diverging ones.
  auto Tok = CancelToken::create();
  Tok->request();
  std::vector<SolveJob> Batch;
  auto Opts = SolverOptions::parse("SpacerTS(fig15)");
  ASSERT_TRUE(Opts.has_value());
  for (int I = 0; I < 4; ++I)
    Batch.push_back(SolveJob{[](TermContext &C) { return appendixCSystem(C); },
                             *Opts, 0});
  auto Start = std::chrono::steady_clock::now();
  std::vector<SolveJobOutcome> Out = Scheduler(2).run(Batch, Tok);
  ASSERT_EQ(Out.size(), 4u);
  for (const SolveJobOutcome &O : Out)
    EXPECT_EQ(O.Status, ChcStatus::Unknown);
  EXPECT_LT(secondsSince(Start), 5.0);
}

TEST(SchedulerTest, CancellationStopsDivergingJobQuickly) {
  // SpacerTS(fig15) on the Appendix C system diverges (that is the paper's
  // point); with no deadline, only cooperative cancellation can stop it.
  // The flag is polled every propagation/pivot round, so the engine must
  // wind down orders of magnitude faster than the 60 s safety net.
  auto Tok = CancelToken::create();
  std::vector<SolveJob> Batch;
  auto Opts = SolverOptions::parse("SpacerTS(fig15)");
  ASSERT_TRUE(Opts.has_value());
  Batch.push_back(SolveJob{[](TermContext &C) { return appendixCSystem(C); },
                           *Opts, 60000});

  std::thread Killer([&Tok] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Tok->request();
  });
  auto Start = std::chrono::steady_clock::now();
  std::vector<SolveJobOutcome> Out = Scheduler(1).run(Batch, Tok);
  double Elapsed = secondsSince(Start);
  Killer.join();

  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Status, ChcStatus::Unknown);
  EXPECT_LT(Elapsed, 10.0); // Far below the 60 s deadline.
}

//===----------------------------------------------------------------------===//
// Portfolio
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, ConfigListParsing) {
  std::vector<std::string> Parts =
      splitConfigList("Ret(T,MBP(1)), Yld(T,MBP(1)),SpacerTS(fig1)");
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "Ret(T,MBP(1))"); // Commas inside parens survive.
  EXPECT_EQ(Parts[1], "Yld(T,MBP(1))");
  EXPECT_EQ(Parts[2], "SpacerTS(fig1)");

  auto Ok = parseConfigList("Ind(Ret(F,MBP(0))),Solve");
  ASSERT_TRUE(Ok.has_value());
  EXPECT_EQ(Ok->size(), 2u);
  EXPECT_FALSE(parseConfigList("Ret(T,MBP(1)),Bogus").has_value());
  EXPECT_FALSE(parseConfigList("").has_value());
}

TEST(PortfolioTest, RaceAgreesWithGroundTruth) {
  // Example 4 is UNSAT, Example 5 SAT; a mixed-engine race must return the
  // ground truth whichever member gets there first. Verification is on, so
  // the race only ever commits to checked answers.
  auto Configs =
      parseConfigList("Ret(T,MBP(1)),Yld(T,MBP(1)),SpacerTS(fig1)");
  ASSERT_TRUE(Configs.has_value());
  for (SolverOptions &O : *Configs)
    O.VerifyResult = true;

  PortfolioResult Unsat = racePortfolio(
      [](TermContext &C) { return paperExample4(C); }, *Configs,
      /*Jobs=*/2, /*TimeoutMs=*/20000);
  EXPECT_EQ(Unsat.Winner.Status, ChcStatus::Unsat);
  ASSERT_GE(Unsat.WinnerIndex, 0);
  EXPECT_TRUE(Unsat.Members[Unsat.WinnerIndex].Winner);
  EXPECT_EQ(Unsat.WinnerConfig, Unsat.Members[Unsat.WinnerIndex].Config);
  ASSERT_NE(Unsat.WinnerCtx, nullptr);

  PortfolioResult Sat = racePortfolio(
      [](TermContext &C) { return paperExample5(C); }, *Configs,
      /*Jobs=*/2, /*TimeoutMs=*/20000);
  EXPECT_EQ(Sat.Winner.Status, ChcStatus::Sat);
  // The winning invariant lives in the race-owned context and is usable
  // after the race ends.
  ASSERT_NE(Sat.WinnerCtx, nullptr);
  EXPECT_FALSE(Sat.WinnerCtx->toString(Sat.Winner.Invariant).empty());
  // Merged stats cover every member, so they dominate the winner's own.
  EXPECT_GE(Sat.MergedStats.SmtChecks, Sat.Winner.Stats.SmtChecks);
}

TEST(PortfolioTest, WinnerCancelsDivergingLoser) {
  // Race a diverging member (SpacerTS(fig15) on Appendix C — no deadline,
  // so only cancellation can stop it) against a member that solves the
  // system. The race must end shortly after the winner commits, with the
  // loser reporting Unknown + Cancelled.
  auto Configs = parseConfigList("SpacerTS(fig15),Ind(Yld(T,MBP(1)))");
  ASSERT_TRUE(Configs.has_value());

  auto Start = std::chrono::steady_clock::now();
  PortfolioResult R = racePortfolio(
      [](TermContext &C) { return appendixCSystem(C); }, *Configs,
      /*Jobs=*/2, /*TimeoutMs=*/0);
  double Elapsed = secondsSince(Start);

  EXPECT_EQ(R.Winner.Status, ChcStatus::Unsat);
  EXPECT_EQ(R.WinnerIndex, 1);
  EXPECT_EQ(R.Members[0].Status, ChcStatus::Unknown);
  EXPECT_TRUE(R.Members[0].Cancelled);
  EXPECT_FALSE(R.Members[1].Cancelled);
  EXPECT_LT(Elapsed, 30.0); // Divergence is cut short, not ridden out.
}
