//===- tests/SatSolverTest.cpp - CDCL SAT solver tests --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace mucyc;

namespace {
SatLit mkLit(uint32_t V, bool Neg = false) { return SatLit(V, Neg); }
} // namespace

TEST(SatSolverTest, TrivialSat) {
  SatSolver S;
  uint32_t A = S.newVar();
  S.addClause({mkLit(A)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

TEST(SatSolverTest, TrivialUnsat) {
  SatSolver S;
  uint32_t A = S.newVar();
  S.addClause({mkLit(A)});
  EXPECT_FALSE(S.addClause({mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, UnitPropagationChain) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({mkLit(A)});
  S.addClause({mkLit(A, true), mkLit(B)});
  S.addClause({mkLit(B, true), mkLit(C)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
}

TEST(SatSolverTest, RequiresSearch) {
  // (a | b) & (!a | b) & (a | !b) forces a & b.
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  S.addClause({mkLit(A, true), mkLit(B)});
  S.addClause({mkLit(A), mkLit(B, true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatSolverTest, PigeonholeUnsat) {
  // 3 pigeons in 2 holes: classic small UNSAT requiring conflicts.
  SatSolver S;
  uint32_t P[3][2];
  for (auto &Row : P)
    for (uint32_t &V : Row)
      V = S.newVar();
  for (auto &Row : P)
    S.addClause({mkLit(Row[0]), mkLit(Row[1])});
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause({mkLit(P[I][H], true), mkLit(P[J][H], true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, AssumptionsAndCore) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({mkLit(A, true), mkLit(B, true)}); // not (a & b).
  // Sat under one of them.
  EXPECT_EQ(S.solve({mkLit(A)}), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  // Unsat under both; C is irrelevant and must stay out of the core.
  EXPECT_EQ(S.solve({mkLit(A), mkLit(B), mkLit(C)}),
            SatSolver::Result::Unsat);
  const auto &Core = S.conflictCore();
  EXPECT_GE(Core.size(), 1u);
  EXPECT_LE(Core.size(), 2u);
  for (SatLit L : Core)
    EXPECT_NE(L.var(), C);
  // The solver remains usable afterwards.
  EXPECT_EQ(S.solve({mkLit(B)}), SatSolver::Result::Sat);
}

TEST(SatSolverTest, AssumptionConflictsWithUnit) {
  SatSolver S;
  uint32_t A = S.newVar();
  S.addClause({mkLit(A)});
  EXPECT_EQ(S.solve({mkLit(A, true)}), SatSolver::Result::Unsat);
  ASSERT_EQ(S.conflictCore().size(), 1u);
  EXPECT_EQ(S.conflictCore()[0], mkLit(A, true));
}

TEST(SatSolverTest, IncrementalAddBetweenSolves) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  S.addClause({mkLit(A, true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(B));
  S.addClause({mkLit(B, true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, TautologyAndDuplicates) {
  SatSolver S;
  uint32_t A = S.newVar();
  EXPECT_TRUE(S.addClause({mkLit(A), mkLit(A, true)})); // Tautology: no-op.
  EXPECT_TRUE(S.addClause({mkLit(A), mkLit(A), mkLit(A)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

namespace {
bool bruteForce(int NumVars, const std::vector<std::vector<SatLit>> &Cls) {
  for (uint32_t M = 0; M < (1u << NumVars); ++M) {
    bool Ok = true;
    for (const auto &C : Cls) {
      bool COk = false;
      for (SatLit L : C)
        if (((M >> L.var()) & 1) != L.negated()) {
          COk = true;
          break;
        }
      if (!COk) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      return true;
  }
  return false;
}
} // namespace

/// Randomized incremental solving cross-checked against brute force,
/// including model validation and learned-state reuse across rounds.
class SatSolverPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatSolverPropertyTest, IncrementalAgreesWithBruteForce) {
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 250; ++Round) {
    int NumVars = 4 + Rng() % 9;
    SatSolver S;
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    std::vector<std::vector<SatLit>> Added;
    bool Dead = false;
    int Phases = 2 + Rng() % 4;
    for (int P = 0; P < Phases && !Dead; ++P) {
      int NumCls = 1 + Rng() % 10;
      for (int CI = 0; CI < NumCls; ++CI) {
        int Len = 1 + Rng() % 4;
        std::vector<SatLit> Cl;
        for (int I = 0; I < Len; ++I)
          Cl.push_back(mkLit(Rng() % NumVars, Rng() % 2));
        Added.push_back(Cl);
        S.addClause(Cl);
      }
      bool Inc = S.solve() == SatSolver::Result::Sat;
      ASSERT_EQ(Inc, bruteForce(NumVars, Added));
      if (Inc) {
        for (const auto &C : Added) {
          bool Ok = false;
          for (SatLit L : C)
            if (S.modelValue(L.var()) != L.negated())
              Ok = true;
          ASSERT_TRUE(Ok) << "model violates a clause";
        }
      } else {
        Dead = true;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatSolverPropertyTest,
                         ::testing::Values(101u, 202u, 303u));

/// Assumption cores on random instances: the core must itself be an
/// unsatisfiable assumption set.
class SatCorePropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatCorePropertyTest, CoresAreUnsatisfiable) {
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 150; ++Round) {
    int NumVars = 5 + Rng() % 6;
    SatSolver S;
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    int NumCls = 3 + Rng() % 15;
    for (int CI = 0; CI < NumCls; ++CI) {
      int Len = 2 + Rng() % 3;
      std::vector<SatLit> Cl;
      for (int I = 0; I < Len; ++I)
        Cl.push_back(mkLit(Rng() % NumVars, Rng() % 2));
      S.addClause(Cl);
    }
    std::vector<SatLit> Assumps;
    for (int I = 0; I < NumVars; ++I)
      if (Rng() % 2)
        Assumps.push_back(mkLit(I, Rng() % 2));
    if (S.solve(Assumps) == SatSolver::Result::Sat)
      continue;
    // The reported core must reproduce the conflict.
    std::vector<SatLit> Core = S.conflictCore();
    for (SatLit L : Core)
      EXPECT_TRUE(std::find(Assumps.begin(), Assumps.end(), L) !=
                  Assumps.end())
          << "core literal is not an assumption";
    EXPECT_EQ(S.solve(Core), SatSolver::Result::Unsat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatCorePropertyTest,
                         ::testing::Values(7u, 8u));
