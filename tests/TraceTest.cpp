//===- tests/TraceTest.cpp - Trace data structure tests -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Trace.h"

#include <gtest/gtest.h>

using namespace mucyc;

TEST(TraceTest, EmptyTraceHasNegativeDepth) {
  TermContext C;
  Trace T(C);
  EXPECT_EQ(T.depth(), -1);
}

TEST(TraceTest, UnfoldPushesTrueRoot) {
  TermContext C;
  Trace T(C);
  T.unfold();
  EXPECT_EQ(T.depth(), 0);
  EXPECT_EQ(T.formula(0), C.mkTrue());
  T.unfold();
  EXPECT_EQ(T.depth(), 1);
  EXPECT_EQ(T.formula(0), C.mkTrue());
}

TEST(TraceTest, UnfoldShiftsLevels) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  Trace T(C);
  T.unfold();
  TermRef L = C.mkGe(X, C.mkIntConst(0));
  T.strengthen(0, L);
  EXPECT_EQ(T.formula(0), L);
  T.unfold();
  // The old root is now level 1; the new root is true.
  EXPECT_EQ(T.formula(0), C.mkTrue());
  EXPECT_EQ(T.formula(1), L);
}

TEST(TraceTest, StrengthenDeduplicates) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  Trace T(C);
  T.unfold();
  TermRef L = C.mkGe(X, C.mkIntConst(0));
  T.strengthen(0, L);
  T.strengthen(0, L);
  EXPECT_EQ(T.lemmas(0).size(), 1u);
  // Conjunctions are split into individual lemmas.
  TermRef M = C.mkAnd(L, C.mkLe(X, C.mkIntConst(9)));
  T.strengthen(0, M);
  EXPECT_EQ(T.lemmas(0).size(), 2u);
}

TEST(TraceTest, MonotoneStrengthenReachesDeeperLevels) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  Trace T(C);
  T.unfold();
  T.unfold();
  T.unfold(); // Levels 0, 1, 2.
  TermRef L = C.mkGe(X, C.mkIntConst(1));
  T.strengthen(1, L, /*Monotone=*/true);
  EXPECT_EQ(T.formula(0), C.mkTrue());
  EXPECT_EQ(T.formula(1), L);
  EXPECT_EQ(T.formula(2), L);
}

TEST(TraceTest, ReplaceCell) {
  TermContext C;
  TermRef X = C.mkVar("x", Sort::Int);
  Trace T(C);
  T.unfold();
  T.strengthen(0, C.mkGe(X, C.mkIntConst(0)));
  TermRef New = C.mkAnd(C.mkGe(X, C.mkIntConst(2)),
                        C.mkLe(X, C.mkIntConst(5)));
  T.replaceCell(0, New);
  EXPECT_EQ(T.lemmas(0).size(), 2u);
  EXPECT_EQ(T.formula(0), New);
  // Replacing with true empties the cell.
  T.replaceCell(0, C.mkTrue());
  EXPECT_EQ(T.formula(0), C.mkTrue());
}
