#!/usr/bin/env bash
# Bad-invocation corpus for the CLI error boundary: every mishandled
# invocation must exit 2 (usage/input error) with a one-line diagnostic on
# stderr — never a crash (signal exits are >= 128), never exit 3 (reserved
# for internal errors escaping the boundary), and never a silent 0.
#
#   scripts/test_cli_errors.sh <mucyc> <mucyc-fuzz> <corpus-dir>
set -u

MUCYC=$1
FUZZ=$2
CORPUS=$3
FAILS=0

# expect_usage_error NAME EXPECTED_EXIT CMD...: run CMD, require the exact
# exit code and a non-empty stderr diagnostic.
expect_error() {
  local Name=$1 Want=$2
  shift 2
  local Err Got
  Err=$("$@" 2>&1 >/dev/null)
  Got=$?
  if [ "$Got" -ne "$Want" ]; then
    echo "FAIL $Name: exit $Got, want $Want ($*)" >&2
    FAILS=$((FAILS + 1))
  elif [ -z "$Err" ]; then
    echo "FAIL $Name: no stderr diagnostic ($*)" >&2
    FAILS=$((FAILS + 1))
  fi
}

expect_error no-args            2 "$MUCYC"
expect_error unknown-flag       2 "$MUCYC" --bogus
expect_error flag-missing-value 2 "$MUCYC" --config
expect_error missing-file       2 "$MUCYC" /nonexistent/no-such-file.smt2
expect_error bad-config         2 "$MUCYC" --config "NotAnEngine" \
  "$CORPUS/ok-divisible.smt2"
expect_error bad-portfolio      2 "$MUCYC" --portfolio "Ret(T,MBP(1)),Nope" \
  "$CORPUS/ok-divisible.smt2"
expect_error bad-isolate        2 "$MUCYC" --isolate sometimes \
  "$CORPUS/ok-divisible.smt2"
expect_error isolate-no-value   2 "$MUCYC" --isolate

# An isolated solve of a good file still exits 0 through the worker tier.
"$MUCYC" --isolate crash "$CORPUS/ok-divisible.smt2" >/dev/null 2>&1
Got=$?
if [ "$Got" -ne 0 ]; then
  echo "FAIL ok-isolated: exit $Got, want 0" >&2
  FAILS=$((FAILS + 1))
fi

# Every parse/sort-check reject in the corpus must come back as a clean
# input error, whatever garbage is inside.
for F in "$CORPUS"/bad-*.smt2; do
  expect_error "corpus-$(basename "$F")" 2 "$MUCYC" "$F"
done

# Same contract for the BTOR2 frontend: every malformed transition system
# is a typed input error with a "line N:" diagnostic, never an assert.
for F in "$CORPUS"/bad-*.btor2; do
  expect_error "corpus-$(basename "$F")" 2 "$MUCYC" "$F"
done
expect_error bad-format        2 "$MUCYC" --format vhdl \
  "$CORPUS/ok-ts-counter-safe.btor2"
# Format forced across frontends: each parser rejects the other's text.
expect_error btor2-as-smt2     2 "$MUCYC" --format smt2 \
  "$CORPUS/ok-ts-counter-safe.btor2"
expect_error smt2-as-btor2     2 "$MUCYC" --format btor2 \
  "$CORPUS/ok-divisible.smt2"

expect_error fuzz-unknown-flag 2 "$FUZZ" --bogus
expect_error fuzz-bad-domains  2 "$FUZZ" --domains smt,nope

# Sanity: a good invocation still exits 0 (a gate that rejects everything
# would pass all the checks above).
"$MUCYC" "$CORPUS/ok-divisible.smt2" >/dev/null 2>&1
Got=$?
if [ "$Got" -ne 0 ]; then
  echo "FAIL ok-file: exit $Got, want 0" >&2
  FAILS=$((FAILS + 1))
fi
"$MUCYC" "$CORPUS/ok-ts-counter-safe.btor2" >/dev/null 2>&1
Got=$?
if [ "$Got" -ne 0 ]; then
  echo "FAIL ok-btor2-file: exit $Got, want 0" >&2
  FAILS=$((FAILS + 1))
fi

if [ "$FAILS" -ne 0 ]; then
  echo "$FAILS CLI error-boundary check(s) failed" >&2
  exit 1
fi
echo "CLI error boundary: all invocations handled."
