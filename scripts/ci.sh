#!/usr/bin/env bash
# Continuous-integration gate: tier-1 build + tests, then the randomized
# differential-testing smoke. Usage:
#
#   scripts/ci.sh [build-dir]          # default gate (build + ctest + fuzz)
#   scripts/ci.sh --asan [build-dir]   # same gate under AddressSanitizer
#   scripts/ci.sh --tsan [build-dir]   # same gate under ThreadSanitizer
#
# The fuzz leg runs mucyc-fuzz twice with the same fixed seed and requires
# the reports to be byte-identical — the determinism contract every
# checked-in repro depends on — and, of course, zero oracle violations.
# The instance mix includes the "inc" domain, so every run is also an
# IncrementalEquivalence smoke (random push/assert/check/pop scripts vs.
# a one-shot reference solver). A third run with --no-incremental then
# byte-compares the per-instance chc consensus verdicts against the
# default run: the incremental backend (solver pool + query cache) must
# be verdict-equivalent to fresh solvers on the whole suite.
# A chaos leg solves a fixed-seed batch under deterministic fault
# injection (twice, byte-compared): injected faults may only degrade
# verdicts, never flip them or crash the runtime.
# The share legs cover the cooperative portfolio: a fixed-seed blind-vs-
# cooperative fuzz batch (twice, byte-compared — the share oracle runs its
# members sequentially, so its report is deterministic), a fixed suite run
# through the real threaded portfolio with --share-lemmas on and off whose
# verdict lines must be byte-identical (sharing may rescue members, never
# flip an answer), the portfolio_coop benchmark enforcing the cooperative
# no-regression floor on summed SMT checks (BENCH_portfolio.json), and —
# in the default gate — the lemma-bus stress tests rebuilt and rerun under
# ThreadSanitizer.
# The arith legs gate the small-value arithmetic fast path: the fixed-seed
# CHC fuzz suite is replayed under MUCYC_FORCE_HEAP=1 (twice, byte-compared
# for determinism) and its consensus verdict lines must be byte-identical
# to the default run's — the heap representation is the reference
# semantics, so a verdict that moves under the knob is a fast-path bug. A
# dedicated arith fuzz batch runs the op-level fast-vs-slow differential,
# and the micro_arith benchmark enforces the small-value speedup floor via
# its exit status (BENCH_arith.json).
# The ts legs gate the BTOR2 transition-system frontend: a fixed-seed batch
# of generated hardware-style state machines is pushed through the
# parse/print round trip, the alpha-invariant re-encode fingerprint check,
# and the four-engine race against BMC ground truth (twice, byte-compared;
# the same leg also runs in the --asan gate), the ts_suite benchmark
# records the counter+FIFO hardware-workload baseline (BENCH_ts.json), and
# the serve section replays the golden .btor2 corpus through the daemon
# cold and alpha-renamed-warm — renamed hardware designs must be answered
# from the Verify-certified store just like renamed CHC systems.
# The robustness legs gate the crash-isolation tier: the isolate-labeled
# ctest smoke (forked workers dying by signal/rlimit/wedge classify into
# typed Unknowns), the serve_crash benchmark enforcing the isolation
# overhead ceiling and the 100% chaos-availability floor
# (BENCH_robustness.json), and a chaos replay of the exported suite
# through a --isolate crash daemon with the service-boundary fault plan
# armed — run twice on fresh stores, byte-compared, and checked against
# the offline verdicts for flips (degrading to unknown is allowed,
# flipping a definitive answer is not).
# Seed and instance count are fixed so CI failures replay locally with
# exactly one command (printed on failure).
set -eu

ASAN=0
TSAN=0
if [ "${1:-}" = "--asan" ]; then
  ASAN=1
  shift
elif [ "${1:-}" = "--tsan" ]; then
  TSAN=1
  shift
fi
BUILD=${1:-build}
if [ "$ASAN" = 1 ]; then
  BUILD=${1:-build-asan}
elif [ "$TSAN" = 1 ]; then
  BUILD=${1:-build-tsan}
fi

FUZZ_SEED=20240801
FUZZ_N=500
CHAOS_SEED=20240802
CHAOS_N=300
SHARE_SEED=20240803
SHARE_N=120
TS_SEED=20260808
TS_N=200
SHARE_BUDGET=300
SHARE_PORTFOLIO="SpacerTS(fig1),Ret(T,MBP(1)),Yld(T,MBP(1))"

echo "== configure ($BUILD) =="
if [ "$ASAN" = 1 ]; then
  cmake -B "$BUILD" -S . -DMUCYC_SANITIZE=address
elif [ "$TSAN" = 1 ]; then
  cmake -B "$BUILD" -S . -DMUCYC_SANITIZE=thread
else
  cmake -B "$BUILD" -S .
fi

echo "== build =="
cmake --build "$BUILD" -j "$(nproc)"

echo "== tier-1 tests =="
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

echo "== fuzz smoke: $FUZZ_N instances, seed $FUZZ_SEED =="
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT
run_fuzz() {
  "$BUILD"/examples/mucyc-fuzz --seed "$FUZZ_SEED" --n "$FUZZ_N" \
    --repro-dir "$1" --verdicts "$2"
}
if ! run_fuzz "$OUT/repros" "$OUT/verdicts_a.txt" >"$OUT/a.txt"; then
  cat "$OUT/a.txt"
  echo "FAIL: oracle violations; shrunk repros in $OUT/repros/" >&2
  echo "replay: $BUILD/examples/mucyc-fuzz --seed $FUZZ_SEED --n $FUZZ_N" >&2
  trap - EXIT # Keep the repros for the developer.
  exit 1
fi

echo "== fuzz determinism: second run must be byte-identical =="
run_fuzz "$OUT/repros2" "$OUT/verdicts_b.txt" >"$OUT/b.txt"
if ! cmp -s "$OUT/a.txt" "$OUT/b.txt"; then
  diff -u "$OUT/a.txt" "$OUT/b.txt" | head -40 >&2
  echo "FAIL: fuzz report is not deterministic" >&2
  exit 1
fi
if ! cmp -s "$OUT/verdicts_a.txt" "$OUT/verdicts_b.txt"; then
  echo "FAIL: chc verdict lines are not deterministic" >&2
  exit 1
fi
tail -2 "$OUT/a.txt"

echo "== incremental differential: --no-incremental must match verdicts =="
if ! "$BUILD"/examples/mucyc-fuzz --seed "$FUZZ_SEED" --n "$FUZZ_N" \
    --no-incremental --repro-dir "$OUT/repros3" \
    --verdicts "$OUT/verdicts_fresh.txt" >"$OUT/c.txt"; then
  cat "$OUT/c.txt"
  echo "FAIL: oracle violations under --no-incremental" >&2
  exit 1
fi
if ! cmp -s "$OUT/verdicts_a.txt" "$OUT/verdicts_fresh.txt"; then
  diff -u "$OUT/verdicts_a.txt" "$OUT/verdicts_fresh.txt" | head -40 >&2
  echo "FAIL: incremental and fresh-solver chc verdicts differ" >&2
  echo "replay: $BUILD/examples/mucyc-fuzz --seed $FUZZ_SEED" \
       "--n $FUZZ_N [--no-incremental] --verdicts FILE" >&2
  exit 1
fi

echo "== forced-heap differential: verdicts must survive MUCYC_FORCE_HEAP =="
# The same $FUZZ_N-instance suite with every BigInt routed onto heap limbs.
# Two forced runs must be byte-identical (the knob must not perturb any
# seed stream), and the consensus verdicts must match the default run's:
# representation choice is unobservable above the arithmetic layer.
run_forced() {
  MUCYC_FORCE_HEAP=1 "$BUILD"/examples/mucyc-fuzz --seed "$FUZZ_SEED" \
    --n "$FUZZ_N" --repro-dir "$1" --verdicts "$2"
}
if ! run_forced "$OUT/repros_fh" "$OUT/verdicts_fh_a.txt" >"$OUT/fh_a.txt"; then
  cat "$OUT/fh_a.txt"
  echo "FAIL: oracle violations under MUCYC_FORCE_HEAP=1" >&2
  echo "replay: MUCYC_FORCE_HEAP=1 $BUILD/examples/mucyc-fuzz" \
       "--seed $FUZZ_SEED --n $FUZZ_N" >&2
  trap - EXIT
  exit 1
fi
run_forced "$OUT/repros_fh2" "$OUT/verdicts_fh_b.txt" >"$OUT/fh_b.txt"
if ! cmp -s "$OUT/fh_a.txt" "$OUT/fh_b.txt"; then
  diff -u "$OUT/fh_a.txt" "$OUT/fh_b.txt" | head -40 >&2
  echo "FAIL: forced-heap fuzz report is not deterministic" >&2
  exit 1
fi
if ! cmp -s "$OUT/verdicts_fh_a.txt" "$OUT/verdicts_fh_b.txt"; then
  echo "FAIL: forced-heap verdict lines are not deterministic" >&2
  exit 1
fi
if ! cmp -s "$OUT/verdicts_a.txt" "$OUT/verdicts_fh_a.txt"; then
  diff -u "$OUT/verdicts_a.txt" "$OUT/verdicts_fh_a.txt" | head -40 >&2
  echo "FAIL: MUCYC_FORCE_HEAP changed a chc consensus verdict" >&2
  echo "replay: MUCYC_FORCE_HEAP=1 $BUILD/examples/mucyc-fuzz" \
       "--seed $FUZZ_SEED --n $FUZZ_N --verdicts FILE" >&2
  exit 1
fi
echo "forced-heap differential: verdicts identical across representations"

echo "== arith smoke: op-level fast-vs-forced-heap differential =="
ARITH_SEED=20240804
ARITH_N=200
if ! "$BUILD"/examples/mucyc-fuzz --domains arith --seed "$ARITH_SEED" \
    --n "$ARITH_N" >"$OUT/arith.txt"; then
  cat "$OUT/arith.txt"
  echo "FAIL: arith fast/slow oracle violations" >&2
  echo "replay: $BUILD/examples/mucyc-fuzz --domains arith" \
       "--seed $ARITH_SEED --n $ARITH_N" >&2
  exit 1
fi
tail -2 "$OUT/arith.txt"

echo "== ts smoke: $TS_N BTOR2 transition systems, seed $TS_SEED =="
# Generated hardware-style state machines through the whole frontend:
# parse/print round trip, alpha-invariant re-encode fingerprint, then the
# four-engine race against k-step BMC ground truth. Two same-seed runs
# must be byte-identical in both the report and the per-instance verdict
# lines — checked-in .btor2 repros depend on it.
run_ts() {
  "$BUILD"/examples/mucyc-fuzz --domains ts --seed "$TS_SEED" \
    --n "$TS_N" --repro-dir "$1" --verdicts "$2"
}
if ! run_ts "$OUT/ts_repros" "$OUT/ts_verdicts_a.txt" >"$OUT/ts_a.txt"; then
  cat "$OUT/ts_a.txt"
  echo "FAIL: ts oracle violations; repros in $OUT/ts_repros/" >&2
  echo "replay: $BUILD/examples/mucyc-fuzz --domains ts" \
       "--seed $TS_SEED --n $TS_N" >&2
  trap - EXIT
  exit 1
fi
run_ts "$OUT/ts_repros2" "$OUT/ts_verdicts_b.txt" >"$OUT/ts_b.txt"
if ! cmp -s "$OUT/ts_a.txt" "$OUT/ts_b.txt"; then
  diff -u "$OUT/ts_a.txt" "$OUT/ts_b.txt" | head -40 >&2
  echo "FAIL: ts report is not deterministic" >&2
  exit 1
fi
if ! cmp -s "$OUT/ts_verdicts_a.txt" "$OUT/ts_verdicts_b.txt"; then
  echo "FAIL: ts verdict lines are not deterministic" >&2
  exit 1
fi
tail -2 "$OUT/ts_a.txt"

echo "== chaos smoke: $CHAOS_N fault-injected instances, seed $CHAOS_SEED =="
# Every instance is solved clean and under deterministic fault injection;
# injected faults may only degrade verdicts to Unknown, never flip them or
# crash the runtime. Two same-seed runs must be byte-identical — the
# determinism contract of the fault schedules themselves.
run_chaos() {
  "$BUILD"/examples/mucyc-fuzz --domains chaos --seed "$CHAOS_SEED" \
    --n "$CHAOS_N" --repro-dir "$1"
}
if ! run_chaos "$OUT/chaos_repros" >"$OUT/chaos_a.txt"; then
  cat "$OUT/chaos_a.txt"
  echo "FAIL: chaos oracle violations; repros in $OUT/chaos_repros/" >&2
  echo "replay: $BUILD/examples/mucyc-fuzz --domains chaos" \
       "--seed $CHAOS_SEED --n $CHAOS_N" >&2
  trap - EXIT
  exit 1
fi
run_chaos "$OUT/chaos_repros2" >"$OUT/chaos_b.txt"
if ! cmp -s "$OUT/chaos_a.txt" "$OUT/chaos_b.txt"; then
  diff -u "$OUT/chaos_a.txt" "$OUT/chaos_b.txt" | head -40 >&2
  echo "FAIL: chaos report is not deterministic" >&2
  exit 1
fi
tail -2 "$OUT/chaos_a.txt"

echo "== share smoke: $SHARE_N blind-vs-cooperative instances, seed $SHARE_SEED =="
# Every instance is solved blind and cooperatively (all engines on one
# lemma-exchange bus); sharing may only degrade verdicts to Unknown, never
# flip them. The oracle runs its members sequentially in config order, so
# two same-seed runs must be byte-identical.
run_share() {
  "$BUILD"/examples/mucyc-fuzz --domains share --seed "$SHARE_SEED" \
    --n "$SHARE_N" --repro-dir "$1"
}
if ! run_share "$OUT/share_repros" >"$OUT/share_a.txt"; then
  cat "$OUT/share_a.txt"
  echo "FAIL: share oracle violations; repros in $OUT/share_repros/" >&2
  echo "replay: $BUILD/examples/mucyc-fuzz --domains share" \
       "--seed $SHARE_SEED --n $SHARE_N" >&2
  trap - EXIT
  exit 1
fi
run_share "$OUT/share_repros2" >"$OUT/share_b.txt"
if ! cmp -s "$OUT/share_a.txt" "$OUT/share_b.txt"; then
  diff -u "$OUT/share_a.txt" "$OUT/share_b.txt" | head -40 >&2
  echo "FAIL: share report is not deterministic" >&2
  exit 1
fi
tail -2 "$OUT/share_a.txt"

echo "== share portfolio: --share-lemmas must not change suite verdicts =="
# The real threaded portfolio over the exported suite, with and without
# the exchange, under the same deterministic refine budget. Every member's
# own outcome is budget-bounded and deterministic, so the printed verdict
# is too — and sharing is only allowed to change who wins and how much work
# the race does, never what it answers.
"$BUILD"/examples/export_suite "$OUT/share_suite" >/dev/null
ls "$OUT/share_suite"/*.smt2 >"$OUT/share_files.txt"
run_suite_portfolio() { # $1 = extra flags, $2 = out file
  while read -r F; do
    # shellcheck disable=SC2086
    S=$("$BUILD"/examples/mucyc --portfolio "$SHARE_PORTFOLIO" \
        --max-refine-steps "$SHARE_BUDGET" $1 "$F" || true)
    echo "$(basename "$F") $S"
  done <"$OUT/share_files.txt" >"$2"
}
run_suite_portfolio "" "$OUT/blind_verdicts.txt"
run_suite_portfolio "--share-lemmas" "$OUT/coop_verdicts.txt"
if ! cmp -s "$OUT/blind_verdicts.txt" "$OUT/coop_verdicts.txt"; then
  diff -u "$OUT/blind_verdicts.txt" "$OUT/coop_verdicts.txt" | head -40 >&2
  echo "FAIL: --share-lemmas changed a portfolio verdict" >&2
  exit 1
fi
echo "share portfolio: $(wc -l <"$OUT/blind_verdicts.txt") instances," \
     "verdicts identical with and without the exchange"

echo "== cooperative benchmark: no-regression floor on summed SMT checks =="
# Blind vs. cooperative over the fixed instance mix; writes
# BENCH_portfolio.json at the repo root and fails below the 1.5x floor or
# on any unsound verdict.
"$BUILD"/bench/portfolio_coop --json BENCH_portfolio.json

echo "== arith benchmark: small-value fast-path floor =="
# Replays the frontier-biased operand mix on the fast path and under
# ScopedForceHeap; the digests must match and the fast path must clear the
# 3x floor. Writes BENCH_arith.json at the repo root; exit status 3 means
# the floor was missed.
"$BUILD"/bench/micro_arith --json BENCH_arith.json

echo "== ts benchmark: hardware-workload baseline =="
# Counter and FIFO families through the BTOR2 frontend under the default
# engine; writes BENCH_ts.json at the repo root so later perf PRs have a
# hardware trajectory, and fails on any verdict that contradicts the
# family's expected answer.
"$BUILD"/bench/ts_suite --json BENCH_ts.json

echo "== robustness benchmark: isolation overhead + chaos availability =="
# Leg 1 compares inline vs crash-isolated solveRequest wall clocks (the
# fork tax must stay under 2x); leg 2 drives an in-process daemon under an
# armed chaos plan and requires 100% well-formed replies, zero verdict
# flips, and a restart scan that quarantines every torn store write.
# Writes BENCH_robustness.json at the repo root.
"$BUILD"/bench/serve_crash --json BENCH_robustness.json

if [ "$ASAN" = 0 ] && [ "$TSAN" = 0 ]; then
  echo "== tsan: lemma-bus stress under ThreadSanitizer =="
  # The concurrent half of the exchange (the share oracle and the CI legs
  # above run members sequentially for determinism) is raced here: rebuild
  # the test suite with -fsanitize=thread and run the exchange tests,
  # including the publish/fetch stress and a real threaded cooperative
  # race.
  cmake -B build-tsan -S . -DMUCYC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target mucyc_tests
  (cd build-tsan && ctest -R 'ExchangeTest' --output-on-failure)
fi

echo "== serve smoke: daemon replay must match offline verdicts =="
# Start mucyc-serve on a UNIX socket with a fresh store, replay the
# exported suite through mucyc-client, and require the verdict lines to be
# byte-identical to offline single-shot mucyc on the same files (both under
# the same deterministic refine-step budget). A second, alpha-renamed pass
# against the warm daemon must then be answered entirely from the
# Verify-certified result store.
# Bounds every engine run so the leg is fast and its verdicts are a
# deterministic function of the instance (a few budget-bounded unknowns
# are expected and also exercise the unknowns-stay-cold path).
SERVE_BUDGET=300
"$BUILD"/examples/export_suite "$OUT/suite" >/dev/null
ls "$OUT/suite"/*.smt2 | head -50 >"$OUT/suite_files.txt"

mkdir -p "$OUT/suite_renamed"
while read -r F; do
  # Alpha-rename: every bound variable and the predicate get new names.
  sed -e 's/bm!/al!/g' -e 's/(declare-fun P /(declare-fun Q /' \
      -e 's/(P /(Q /g' "$F" >"$OUT/suite_renamed/$(basename "$F")"
done <"$OUT/suite_files.txt"

"$BUILD"/examples/mucyc-serve --socket "$OUT/serve.sock" \
  --store-dir "$OUT/serve-store" --max-refine-steps "$SERVE_BUDGET" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$OUT"' EXIT
for _ in $(seq 100); do
  [ -S "$OUT/serve.sock" ] && break
  sleep 0.1
done

xargs "$BUILD"/examples/mucyc-client --socket "$OUT/serve.sock" \
  <"$OUT/suite_files.txt" >"$OUT/serve_verdicts.txt"

while read -r F; do
  S=$("$BUILD"/examples/mucyc --max-refine-steps "$SERVE_BUDGET" "$F" \
      || true)
  echo "$(basename "$F") $S"
done <"$OUT/suite_files.txt" >"$OUT/offline_verdicts.txt"
if ! cmp -s "$OUT/serve_verdicts.txt" "$OUT/offline_verdicts.txt"; then
  diff -u "$OUT/offline_verdicts.txt" "$OUT/serve_verdicts.txt" | head -40 >&2
  echo "FAIL: daemon verdicts differ from offline mucyc" >&2
  exit 1
fi

echo "== serve warm cache: renamed resubmission must hit the store =="
sed "s,$OUT/suite/,$OUT/suite_renamed/," "$OUT/suite_files.txt" \
  >"$OUT/renamed_files.txt"
xargs "$BUILD"/examples/mucyc-client --socket "$OUT/serve.sock" \
  --provenance <"$OUT/renamed_files.txt" >"$OUT/warm_provenance.txt"
# Every instance the daemon answered definitively cold must now be served
# from the cache, Verify-certified; unknowns stay cold (nothing to cache).
BAD=$(awk '$2 != "unknown" && ($3 == "cold" || $4 != "verified")' \
      "$OUT/warm_provenance.txt")
if [ -n "$BAD" ]; then
  echo "$BAD" >&2
  echo "FAIL: renamed resubmissions not served from the verified store" >&2
  exit 1
fi
if ! awk '{print $1, $2}' "$OUT/warm_provenance.txt" \
    | cmp -s - "$OUT/serve_verdicts.txt"; then
  echo "FAIL: warm verdicts differ from cold verdicts" >&2
  exit 1
fi
HITS=$(awk '$3 != "cold"' "$OUT/warm_provenance.txt" | wc -l)
echo "serve smoke: $(wc -l <"$OUT/serve_verdicts.txt") instances," \
     "$HITS warm hits"

echo "== serve btor2: golden hardware designs cold + alpha-renamed warm =="
# The daemon content-sniffs BTOR2 bodies, so hardware designs flow through
# the same store as CHC systems. Replay the golden corpus cold, then
# alpha-rename every state/input symbol and resubmit: definitive verdicts
# must come back from the Verify-certified store with unchanged answers —
# the canonical fingerprint is alpha-invariant across frontends too.
ls tests/corpus/ok-*.btor2 >"$OUT/btor2_files.txt"
mkdir -p "$OUT/btor2_renamed"
while read -r F; do
  sed -E 's/(state|input) ([0-9]+) ([A-Za-z_][A-Za-z0-9_]*)$/\1 \2 \3_r/' \
    "$F" >"$OUT/btor2_renamed/$(basename "$F")"
done <"$OUT/btor2_files.txt"
xargs "$BUILD"/examples/mucyc-client --socket "$OUT/serve.sock" \
  <"$OUT/btor2_files.txt" >"$OUT/btor2_cold.txt"
ls "$OUT/btor2_renamed"/*.btor2 | xargs "$BUILD"/examples/mucyc-client \
  --socket "$OUT/serve.sock" --provenance >"$OUT/btor2_warm.txt"
BAD=$(awk '$2 != "unknown" && ($3 == "cold" || $4 != "verified")' \
      "$OUT/btor2_warm.txt")
if [ -n "$BAD" ]; then
  echo "$BAD" >&2
  echo "FAIL: renamed .btor2 resubmissions not served from the store" >&2
  exit 1
fi
if ! awk '{print $2}' "$OUT/btor2_warm.txt" \
    | cmp -s - <(awk '{print $2}' "$OUT/btor2_cold.txt"); then
  paste "$OUT/btor2_cold.txt" "$OUT/btor2_warm.txt" >&2
  echo "FAIL: warm btor2 verdicts differ from cold" >&2
  exit 1
fi
echo "serve btor2: $(wc -l <"$OUT/btor2_cold.txt") goldens," \
     "$(awk '$3 != "cold"' "$OUT/btor2_warm.txt" | wc -l) warm hits"
kill "$SERVE_PID" 2>/dev/null
wait "$SERVE_PID" 2>/dev/null || true
trap 'rm -rf "$OUT"' EXIT

echo "== isolate smoke: forked-worker crash classification =="
(cd "$BUILD" && ctest -L isolate --output-on-failure)

echo "== serve crash leg: chaos replay must be deterministic, no flips =="
# The exported suite again, through a daemon running every cold solve in a
# crash-isolated worker while the service-boundary chaos plan SIGKILLs
# every 7th spawned worker and tears every 5th store write at byte 64.
# The replay is sequential, the kill decision is taken pre-fork and the
# tear offset is fixed, so the whole run is a pure function of the flags:
# two runs on fresh stores must produce byte-identical verdict lines.
# Against the offline verdicts, chaos may only degrade (definitive ->
# unknown after the retry budget), never flip a definitive answer.
CHAOS_PLAN="kill-worker=7,tear-store=5@64"
run_crash_replay() { # $1 = store dir, $2 = out file
  "$BUILD"/examples/mucyc-serve --socket "$OUT/crash.sock" \
    --store-dir "$1" --isolate crash --max-retries 2 \
    --max-refine-steps "$SERVE_BUDGET" --chaos-plan "$CHAOS_PLAN" &
  CRASH_PID=$!
  for _ in $(seq 100); do
    [ -S "$OUT/crash.sock" ] && break
    sleep 0.1
  done
  xargs "$BUILD"/examples/mucyc-client --socket "$OUT/crash.sock" \
    <"$OUT/suite_files.txt" >"$2"
  kill "$CRASH_PID" 2>/dev/null
  wait "$CRASH_PID" 2>/dev/null || true
  rm -f "$OUT/crash.sock"
}
run_crash_replay "$OUT/crash-store-a" "$OUT/crash_verdicts_a.txt"
run_crash_replay "$OUT/crash-store-b" "$OUT/crash_verdicts_b.txt"
if ! cmp -s "$OUT/crash_verdicts_a.txt" "$OUT/crash_verdicts_b.txt"; then
  diff -u "$OUT/crash_verdicts_a.txt" "$OUT/crash_verdicts_b.txt" \
    | head -40 >&2
  echo "FAIL: chaos replay verdicts are not deterministic" >&2
  exit 1
fi
FLIPS=$(paste "$OUT/offline_verdicts.txt" "$OUT/crash_verdicts_a.txt" \
  | awk '$2 != $4 && $4 != "unknown" && $2 != "unknown"')
if [ -n "$FLIPS" ]; then
  echo "$FLIPS" >&2
  echo "FAIL: chaos flipped a definitive verdict" >&2
  exit 1
fi
DEGRADED=$(paste "$OUT/offline_verdicts.txt" "$OUT/crash_verdicts_a.txt" \
  | awk '$2 != $4' | wc -l)
echo "serve crash leg: $(wc -l <"$OUT/crash_verdicts_a.txt") instances" \
     "replayed twice under '$CHAOS_PLAN', byte-identical, 0 flips," \
     "$DEGRADED degraded"

echo "CI gate passed."
