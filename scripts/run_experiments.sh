#!/usr/bin/env bash
# Regenerates every table/figure of the paper reproduction in one sweep.
# Usage: scripts/run_experiments.sh [build-dir] [timeout-ms] [jobs]
#
#   jobs   worker threads for the table1/fig2 sweeps (default: all cores).
#          Parallelism only compresses wall clock: results are collected in
#          submission order, so outputs are identical to --jobs 1.
#
# With --tsan as the first argument, instead configures and builds a
# ThreadSanitizer tree (build-tsan/) and runs the unit tests under it —
# the data-race gate for the parallel runtime.
set -u

if [ "${1:-}" = "--tsan" ]; then
  cmake -B build-tsan -S . -DMUCYC_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)"
  (cd build-tsan && ctest --output-on-failure -j "$(nproc)")
  exit $?
fi

BUILD=${1:-build}
TMO=${2:-1000}
JOBS=${3:-$(nproc)}
OUT=experiments_out
mkdir -p "$OUT"
"$BUILD"/bench/table1      --timeout-ms "$TMO" --jobs "$JOBS" --csv "$OUT/table1.csv" | tee "$OUT/table1.txt"
"$BUILD"/bench/fig2_cactus --timeout-ms "$TMO" --jobs "$JOBS" --csv "$OUT/fig2.csv"   | tee "$OUT/fig2.txt"
"$BUILD"/bench/scatter     --timeout-ms "$TMO" --csv "$OUT/scatter.csv"  | tee "$OUT/scatter.txt"
"$BUILD"/bench/divergence                                                | tee "$OUT/divergence.txt"
"$BUILD"/bench/rc_tricks   --timeout-ms "$TMO"                           | tee "$OUT/rc_tricks.txt"
"$BUILD"/bench/micro_mbp   --benchmark_min_time=0.05s                    | tee "$OUT/micro_mbp.txt"
"$BUILD"/bench/micro_smt   --benchmark_min_time=0.05s                    | tee "$OUT/micro_smt.txt"
"$BUILD"/bench/micro_itp   --benchmark_min_time=0.05s                    | tee "$OUT/micro_itp.txt"
echo "all experiment outputs in $OUT/"
