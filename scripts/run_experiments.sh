#!/usr/bin/env bash
# Regenerates every table/figure of the paper reproduction in one sweep.
# Usage: scripts/run_experiments.sh [build-dir] [timeout-ms]
set -u
BUILD=${1:-build}
TMO=${2:-1000}
OUT=experiments_out
mkdir -p "$OUT"
"$BUILD"/bench/table1      --timeout-ms "$TMO" --csv "$OUT/table1.csv"   | tee "$OUT/table1.txt"
"$BUILD"/bench/fig2_cactus --timeout-ms "$TMO" --csv "$OUT/fig2.csv"     | tee "$OUT/fig2.txt"
"$BUILD"/bench/scatter     --timeout-ms "$TMO" --csv "$OUT/scatter.csv"  | tee "$OUT/scatter.txt"
"$BUILD"/bench/divergence                                                | tee "$OUT/divergence.txt"
"$BUILD"/bench/rc_tricks   --timeout-ms "$TMO"                           | tee "$OUT/rc_tricks.txt"
"$BUILD"/bench/micro_mbp   --benchmark_min_time=0.05s                    | tee "$OUT/micro_mbp.txt"
"$BUILD"/bench/micro_smt   --benchmark_min_time=0.05s                    | tee "$OUT/micro_smt.txt"
"$BUILD"/bench/micro_itp   --benchmark_min_time=0.05s                    | tee "$OUT/micro_itp.txt"
echo "all experiment outputs in $OUT/"
