//===- bench/scatter.cpp - Reproduction of Figures 3-14 -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Appendix B of the paper (Figures 3-14): pairwise scatter plots of solve
// times between configurations. One CSV block per figure with the paper's
// exact pairings, plus a win/loss summary per pair (points above/below the
// diagonal) which is the shape the paper reads off the plots.
//
// Usage: scatter [--timeout-ms N] [--csv out.csv]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <map>

using namespace mucyc;
using namespace mucyc::bench;

namespace {
struct FigurePair {
  const char *Figure;
  const char *XConfig; // X axis.
  const char *YConfig; // Y axis.
};
} // namespace

int main(int Argc, char **Argv) {
  CommonArgs Args = CommonArgs::parse(Argc, Argv);
  // The pairings of Figures 3-14 (Appendix B).
  FigurePair Pairs[] = {
      {"fig3", "Ret(F,MBP(0))", "Ret(F,Model)"},
      {"fig4", "Yld(T,MBP(0))", "Yld(T,Model)"},
      {"fig5", "Ret(F,MBP(0))", "Ret(F,MBP(2))"},
      {"fig6", "Yld(T,MBP(0))", "Yld(T,MBP(2))"},
      {"fig7", "Ret(F,MBP(0))", "Ret(F,MBP(1))"},
      {"fig8", "Yld(T,MBP(0))", "Yld(T,MBP(1))"},
      {"fig9", "Yld(T,MBP(1))", "Ret(F,MBP(0))"},
      {"fig10", "Ind(Yld(T,MBP(1)))", "Ind(Ret(F,MBP(0)))"},
      {"fig11", "Yld(T,MBP(1))", "Yld(F,MBP(1))"},
      {"fig12", "Ind(Yld(T,MBP(1)))", "Yld(T,MBP(1))"},
      {"fig13", "Ind(Yld(T,MBP(1)))", "Ret(F,Model)"},      // Eldarica stand-in.
      {"fig14", "Ind(Yld(T,MBP(1)))", "SpacerTS(fig1)"},    // Spacer stand-in.
  };

  std::vector<BenchInstance> Suite = buildSuite();
  double TimeoutSec = static_cast<double>(Args.TimeoutMs) / 1000.0;

  // Run each distinct configuration once.
  std::map<std::string, std::map<std::string, double>> TimeOf; // cfg->inst.
  std::vector<RunRow> AllRows;
  for (const FigurePair &P : Pairs)
    for (const char *Cfg : {P.XConfig, P.YConfig})
      if (!TimeOf.count(Cfg))
        for (const BenchInstance &B : Suite) {
          RunRow Row = runInstance(B, Cfg, Args.TimeoutMs);
          AllRows.push_back(Row);
          TimeOf[Cfg][B.Name] = Row.correct() ? Row.Seconds : TimeoutSec;
        }

  std::printf("Figures 3-14 reproduction: scatter data over %zu instances, "
              "timeout %.1fs\n\n",
              Suite.size(), TimeoutSec);
  std::printf("figure,x_config,y_config,instance,x_seconds,y_seconds\n");
  for (const FigurePair &P : Pairs)
    for (const BenchInstance &B : Suite)
      std::printf("%s,\"%s\",\"%s\",%s,%.4f,%.4f\n", P.Figure, P.XConfig,
                  P.YConfig, B.Name.c_str(), TimeOf[P.XConfig][B.Name],
                  TimeOf[P.YConfig][B.Name]);

  std::printf("\nwin/loss summary (x faster / y faster / within 10%%):\n");
  for (const FigurePair &P : Pairs) {
    int XWins = 0, YWins = 0, Ties = 0;
    for (const BenchInstance &B : Suite) {
      double X = TimeOf[P.XConfig][B.Name], Y = TimeOf[P.YConfig][B.Name];
      if (X < Y * 0.9)
        ++XWins;
      else if (Y < X * 0.9)
        ++YWins;
      else
        ++Ties;
    }
    std::printf("%-6s %-22s vs %-22s : %3d / %3d / %3d\n", P.Figure,
                P.XConfig, P.YConfig, XWins, YWins, Ties);
  }
  writeCsv(Args.CsvPath, AllRows);
  return 0;
}
