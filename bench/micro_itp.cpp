//===- bench/micro_itp.cpp - Interpolation microbenchmarks ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Cost of the Conflict step's interpolation (the only lemma source in the
// refinement procedures) as the blocked cube and the A-side frame grow:
// cube generalization (unsat-core-guided dropping) vs the QE-strongest
// interpolant vs the trivial weakest one.
//
//===----------------------------------------------------------------------===//

#include "itp/Interpolate.h"

#include "smt/SmtSolver.h"

#include <benchmark/benchmark.h>

using namespace mucyc;

namespace {

/// A(x..) = bounded box reachable region; B = not(bad cube) with Lits
/// literals of which only one is necessary.
struct ItpWorkload {
  TermContext C;
  TermRef A, B;

  explicit ItpWorkload(int CubeLits) {
    TermRef X = C.mkVar("x", Sort::Int), Y = C.mkVar("y", Sort::Int);
    A = C.mkAnd({C.mkGe(X, C.mkIntConst(0)), C.mkLe(X, C.mkIntConst(50)),
                 C.mkEq(Y, C.mkAdd(X, C.mkIntConst(1)))});
    std::vector<TermRef> Cube{C.mkGe(Y, C.mkIntConst(100))}; // The blocker.
    for (int I = 1; I < CubeLits; ++I)
      Cube.push_back(C.mkLe(Y, C.mkIntConst(1000 + I))); // Droppable.
    B = C.mkNot(C.mkAnd(Cube));
  }
};

void BM_ItpCubeGeneralize(benchmark::State &State) {
  ItpWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    TermRef R = interpolate(W.C, W.A, W.B, ItpMode::CubeGeneralize);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ItpCubeGeneralize)->Arg(2)->Arg(6)->Arg(12);

void BM_ItpQeStrongest(benchmark::State &State) {
  ItpWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    TermRef R = interpolate(W.C, W.A, W.B, ItpMode::QeStrongest);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ItpQeStrongest)->Arg(2)->Arg(6)->Arg(12);

void BM_ItpWeakest(benchmark::State &State) {
  ItpWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    TermRef R = interpolate(W.C, W.A, W.B, ItpMode::WeakestB);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ItpWeakest)->Arg(2)->Arg(6)->Arg(12);

void BM_GeneralizeBlockedCube(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  TermContext C;
  TermRef X = C.mkVar("gx", Sort::Int);
  TermRef A = C.mkAnd(C.mkGe(X, C.mkIntConst(0)),
                      C.mkLe(X, C.mkIntConst(9)));
  std::vector<TermRef> Cube{C.mkGe(X, C.mkIntConst(100))};
  for (int I = 1; I < N; ++I)
    Cube.push_back(C.mkLe(X, C.mkIntConst(200 + I)));
  for (auto _ : State) {
    auto R = generalizeBlockedCube(C, A, Cube);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_GeneralizeBlockedCube)->Arg(2)->Arg(8)->Arg(16);

} // namespace

BENCHMARK_MAIN();
