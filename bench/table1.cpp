//===- bench/table1.cpp - Reproduction of Table 1 -------------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 1 of the paper: solved SAT / UNSAT counts for the 24 MuCyc
// configurations — Ret/Yld with b in {T, F} and cex in {Model, MBP(0..2)},
// plus the four optimizations applied to the two reference configurations
// Ret(F,MBP(0)) (closest to Spacer) and Yld(T,MBP(1)) (best RC config).
//
// The paper's workload is 1,972 preprocessed CHC-COMP instances; ours is
// the deterministic synthetic suite (see DESIGN.md for the substitution).
// Absolute counts differ; the claims to check are relative:
//   * MBP columns beat Model columns,
//   * Ret(F,MBP(2)) trails Ret(T,MBP(2)) (progress loss),
//   * Ind(...) improves the reference configs, Que does not.
//
// Usage: table1 [--timeout-ms N] [--csv out.csv] [--with-qe] [--jobs N]
//
// The sweep is submitted as (config x instance) jobs to the runtime
// scheduler: --jobs N parallelizes across cores with results collected in
// submission order, so counts and row order match --jobs 1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mucyc;
using namespace mucyc::bench;

int main(int Argc, char **Argv) {
  CommonArgs Args = CommonArgs::parse(Argc, Argv);
  std::vector<std::string> Configs;
  for (const char *Eng : {"Ret", "Yld"})
    for (const char *B : {"F", "T"})
      for (const char *Cex : {"Model", "MBP(0)", "MBP(1)", "MBP(2)"})
        Configs.push_back(std::string(Eng) + "(" + B + "," + Cex + ")");
  for (const char *Opt : {"Ind", "Cex", "Que", "Mon"}) {
    Configs.push_back(std::string(Opt) + "(Ret(F,MBP(0)))");
    Configs.push_back(std::string(Opt) + "(Yld(T,MBP(1)))");
  }
  if (Args.WithQe) {
    Configs.push_back("Ret(F,QE)");
    Configs.push_back("Yld(T,QE)");
  }

  std::vector<BenchInstance> Suite = buildSuite();
  size_t TotalSat = 0, TotalUnsat = 0;
  for (const BenchInstance &B : Suite)
    (B.Expected == ChcStatus::Sat ? TotalSat : TotalUnsat) += 1;

  std::printf("Table 1 reproduction: %zu instances (%zu sat, %zu unsat), "
              "timeout %llu ms per instance, %u jobs\n\n",
              Suite.size(), TotalSat, TotalUnsat,
              static_cast<unsigned long long>(Args.TimeoutMs), Args.Jobs);
  std::printf("%-24s %5s %7s %7s\n", "configuration", "sat", "unsat",
              "wrong");

  std::vector<RunRow> AllRows =
      runSuiteBatch(Suite, Configs, Args.TimeoutMs, Args.Jobs);
  for (size_t C = 0; C < Configs.size(); ++C) {
    size_t Sat = 0, Unsat = 0, Wrong = 0;
    for (size_t I = 0; I < Suite.size(); ++I) {
      const RunRow &Row = AllRows[C * Suite.size() + I];
      if (Row.wrong())
        ++Wrong;
      else if (Row.Got == ChcStatus::Sat)
        ++Sat;
      else if (Row.Got == ChcStatus::Unsat)
        ++Unsat;
    }
    std::printf("%-24s %5zu %7zu %7zu\n", Configs[C].c_str(), Sat, Unsat,
                Wrong);
    std::fflush(stdout);
  }
  writeCsv(Args.CsvPath, AllRows);
  return 0;
}
