//===- bench/BenchCommon.h - Shared experiment harness ----------*- C++ -*-===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the experiment binaries: run a configuration over
/// benchmark instances with a per-instance timeout, collect (status, time)
/// rows, and emit CSV. Each table/figure binary layers its own presentation
/// on top.
///
//===----------------------------------------------------------------------===//

#ifndef MUCYC_BENCH_BENCHCOMMON_H
#define MUCYC_BENCH_BENCHCOMMON_H

#include "bench_suite/Suite.h"
#include "runtime/Scheduler.h"
#include "solver/ChcSolve.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace mucyc {
namespace bench {

struct RunRow {
  std::string Instance;
  std::string Family;
  std::string Config;
  ChcStatus Expected;
  ChcStatus Got;
  double Seconds;
  int Depth;
  uint64_t SmtChecks;

  bool correct() const { return Got == Expected; }
  bool wrong() const {
    return Got != ChcStatus::Unknown && Got != Expected;
  }
};

inline RunRow runInstance(const BenchInstance &B, const std::string &Config,
                          uint64_t TimeoutMs) {
  TermContext C;
  NormalizedChc N = B.Build(C);
  auto Opts = SolverOptions::parse(Config);
  if (!Opts) {
    std::fprintf(stderr, "bad config: %s\n", Config.c_str());
    std::abort();
  }
  Opts->TimeoutMs = TimeoutMs;
  ChcSolver S(C, N, *Opts);
  SolverResult R = S.solve();
  return RunRow{B.Name,     B.Family,  Config,          B.Expected,
                R.Status,   R.Seconds, R.Depth,         R.Stats.SmtChecks};
}

struct CommonArgs {
  uint64_t TimeoutMs = 1000;
  std::string CsvPath;
  bool WithQe = false;
  /// Worker threads for the solve-job scheduler (0 = one per hardware
  /// thread). Parallelism changes wall clock only: jobs are isolated and
  /// results are collected in submission order, so statuses and row order
  /// are identical for any job count.
  unsigned Jobs = 1;

  static CommonArgs parse(int Argc, char **Argv) {
    CommonArgs A;
    for (int I = 1; I < Argc; ++I) {
      if (!std::strcmp(Argv[I], "--timeout-ms") && I + 1 < Argc)
        A.TimeoutMs = std::strtoull(Argv[++I], nullptr, 10);
      else if (!std::strcmp(Argv[I], "--csv") && I + 1 < Argc)
        A.CsvPath = Argv[++I];
      else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc)
        A.Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
      else if (!std::strcmp(Argv[I], "--with-qe"))
        A.WithQe = true;
    }
    return A;
  }
};

/// Runs every (config x instance) pair through the scheduler and returns
/// rows in config-major submission order — the same sequence the
/// sequential loops produced. Per-instance budget is charged from each
/// job's start, so the CSV reports per-instance CPU-style time while the
/// sweep's wall clock divides by the worker count.
inline std::vector<RunRow>
runSuiteBatch(const std::vector<BenchInstance> &Suite,
              const std::vector<std::string> &Configs, uint64_t TimeoutMs,
              unsigned Jobs) {
  std::vector<SolveRequest> Batch;
  std::vector<RunRow> Rows;
  for (const std::string &Cfg : Configs) {
    auto Opts = SolverOptions::parse(Cfg);
    if (!Opts) {
      std::fprintf(stderr, "bad config: %s\n", Cfg.c_str());
      std::abort();
    }
    for (const BenchInstance &B : Suite) {
      SolveRequest R = SolveRequest::fromBuilder(B.Build, *Opts);
      R.DeadlineMs = TimeoutMs;
      Batch.push_back(std::move(R));
      Rows.push_back(RunRow{B.Name, B.Family, Cfg, B.Expected,
                            ChcStatus::Unknown, 0, 0, 0});
    }
  }
  Scheduler S(Jobs);
  std::vector<SolveResponse> Out = S.run(Batch);
  for (size_t I = 0; I < Out.size(); ++I) {
    Rows[I].Got = Out[I].Status;
    Rows[I].Seconds = Out[I].Seconds;
    Rows[I].Depth = Out[I].Depth;
    Rows[I].SmtChecks = Out[I].Stats.SmtChecks;
  }
  return Rows;
}

inline void writeCsv(const std::string &Path,
                     const std::vector<RunRow> &Rows) {
  if (Path.empty())
    return;
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return;
  std::fprintf(F, "instance,family,config,expected,got,seconds,depth,smt\n");
  for (const RunRow &R : Rows)
    std::fprintf(F, "%s,%s,\"%s\",%s,%s,%.4f,%d,%llu\n", R.Instance.c_str(),
                 R.Family.c_str(), R.Config.c_str(),
                 chcStatusName(R.Expected), chcStatusName(R.Got), R.Seconds,
                 R.Depth, static_cast<unsigned long long>(R.SmtChecks));
  std::fclose(F);
  std::printf("(csv written to %s)\n", Path.c_str());
}

} // namespace bench
} // namespace mucyc

#endif // MUCYC_BENCH_BENCHCOMMON_H
