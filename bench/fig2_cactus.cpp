//===- bench/fig2_cactus.cpp - Reproduction of Figure 2 -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 2 of the paper: cactus plot comparing MuCyc configurations with
// external solvers (Spacer, Golem, Eldarica) and the Solve baseline. The
// external binaries are unavailable offline; the in-repo Spacer abstract
// transition system (SpacerTS) stands in for Spacer/Golem (see DESIGN.md).
//
// For each solver: per-instance solve times (sorted, non-cumulative) are
// printed as a CSV series plus an ASCII cactus plot. The expected shape per
// the paper: SpacerTS and Ind(Yld/Ret) curves dominate the plain configs,
// and Solve trails everyone.
//
// Usage: fig2_cactus [--timeout-ms N] [--csv out.csv] [--jobs N]
//
// Jobs go through the runtime scheduler; the cactus series report
// per-instance solve time (charged from each job's start), so --jobs only
// compresses the sweep's wall clock.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <map>

using namespace mucyc;
using namespace mucyc::bench;

int main(int Argc, char **Argv) {
  CommonArgs Args = CommonArgs::parse(Argc, Argv);
  const char *Solvers[] = {
      "SpacerTS(fig1)",        // Stands in for Spacer / Golem.
      "Ind(Yld(T,MBP(1)))",    // MuCyc best RC configuration.
      "Ind(Ret(F,MBP(0)))",    // MuCyc closest-to-Spacer configuration.
      "Ret(F,Model)",          // GPDR-like (Eldarica-family stand-in).
      "Solve",                 // Paper's baseline.
  };

  std::vector<BenchInstance> Suite = buildSuite();
  std::vector<std::string> Configs(std::begin(Solvers), std::end(Solvers));
  std::vector<RunRow> AllRows =
      runSuiteBatch(Suite, Configs, Args.TimeoutMs, Args.Jobs);
  std::map<std::string, std::vector<double>> Times;
  for (const RunRow &Row : AllRows)
    if (Row.correct())
      Times[Row.Config].push_back(Row.Seconds);
  for (const char *Cfg : Solvers)
    std::sort(Times[Cfg].begin(), Times[Cfg].end());

  std::printf("Figure 2 reproduction: cactus data over %zu instances, "
              "timeout %llu ms\n\n",
              Suite.size(), static_cast<unsigned long long>(Args.TimeoutMs));
  std::printf("solver,solved,rank,seconds\n");
  for (const char *Cfg : Solvers) {
    const auto &T = Times[Cfg];
    for (size_t I = 0; I < T.size(); ++I)
      std::printf("\"%s\",%zu,%zu,%.4f\n", Cfg, T.size(), I + 1, T[I]);
  }

  // ASCII cactus: x = instances solved, y = log-ish time buckets.
  std::printf("\nsolved-instances summary:\n");
  for (const char *Cfg : Solvers) {
    const auto &T = Times[Cfg];
    std::printf("%-22s solved %2zu  ", Cfg, T.size());
    size_t Bar = T.size();
    for (size_t I = 0; I < Bar; ++I)
      std::printf("#");
    std::printf("\n");
  }
  writeCsv(Args.CsvPath, AllRows);
  return 0;
}
