//===- bench/ts_suite.cpp - Hardware-workload baseline --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The BTOR2 frontend's benchmark family: saturating / free-running /
// wrap-around counters at widths 8-64 and clocked FIFO occupancy trackers
// at depths 4-32, generated as BTOR2 text and pushed through the real
// frontend (parse -> bounded-integer lowering -> {iota, tau, beta}
// encoding) before solving. Emits per-instance rows and a summary to
// BENCH_ts.json so later perf PRs have a hardware-workload trajectory to
// compare against, exactly like BENCH_portfolio.json / BENCH_arith.json.
//
//   ts_suite [--timeout-ms N] [--config NAME] [--json FILE]
//
// Exit status: 0 when no definitive verdict contradicts the family's
// expected answer, 1 otherwise (an Unknown under timeout is not a failure
// — it shows up as unsolved in the JSON).
//
//===----------------------------------------------------------------------===//

#include "solver/ChcSolve.h"
#include "ts/Btor2.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mucyc;

namespace {

std::string num(unsigned long long V) { return std::to_string(V); }

/// All-ones value of width W as a decimal string (2^64 - 1 fits uint64_t).
unsigned long long onesOf(unsigned W) {
  return W >= 64 ? ~0ull : (1ull << W) - 1;
}

/// Counter at width W. Mode "safe": saturates 5 below the top, bad one
/// above the saturation point (unreachable — interval invariant). Mode
/// "unsafe": free-running from 0, bad at 5 (reachable at depth 5). Mode
/// "wrap": starts 2 below the top and increments, bad at 1 — reachable
/// only through the wrap-around case split, so a broken modular lowering
/// flips this family's verdict.
std::string counterBtor2(unsigned W, const std::string &Mode) {
  unsigned long long Top = onesOf(W);
  std::string T;
  T += "1 sort bitvec " + num(W) + "\n";
  T += "2 state 1 c\n";
  T += "8 sort bitvec 1\n";
  if (Mode == "safe") {
    unsigned long long Sat = Top - 5, Bad = Top - 4;
    T += "3 zero 1\n";
    T += "4 init 1 2 3\n";
    T += "5 constd 1 " + num(Sat) + "\n";
    T += "9 ult 8 2 5\n";
    T += "10 inc 1 2\n";
    T += "11 ite 1 9 10 2\n";
    T += "12 next 1 2 11\n";
    T += "13 constd 1 " + num(Bad) + "\n";
    T += "14 eq 8 2 13\n";
    T += "15 bad 14\n";
  } else if (Mode == "unsafe") {
    T += "3 zero 1\n";
    T += "4 init 1 2 3\n";
    T += "10 inc 1 2\n";
    T += "12 next 1 2 10\n";
    T += "13 constd 1 5\n";
    T += "14 eq 8 2 13\n";
    T += "15 bad 14\n";
  } else { // wrap
    T += "3 constd 1 " + num(Top - 1) + "\n";
    T += "4 init 1 2 3\n";
    T += "10 inc 1 2\n";
    T += "12 next 1 2 10\n";
    T += "13 constd 1 1\n";
    T += "14 eq 8 2 13\n";
    T += "15 bad 14\n";
  }
  return T;
}

/// FIFO occupancy tracker of depth D: push/pop inputs, environment
/// constraints forbid pushing when full and popping when empty, bad is an
/// occupancy overflow. Safe with invariant cnt <= D.
std::string fifoBtor2(unsigned D) {
  std::string T;
  T += "1 sort bitvec 8\n";
  T += "2 sort bitvec 1\n";
  T += "3 state 1 cnt\n";
  T += "4 input 2 push\n";
  T += "5 input 2 pop\n";
  T += "6 zero 1\n";
  T += "7 init 1 3 6\n";
  T += "8 constd 1 " + num(D) + "\n";
  // cnt' = cnt + push - pop, expressed with ites.
  T += "9 inc 1 3\n";
  T += "10 dec 1 3\n";
  T += "11 ite 1 5 10 3\n";  // pop ? cnt-1 : cnt
  T += "12 ite 1 5 3 9\n";   // pop ? cnt   : cnt+1
  T += "13 ite 1 4 12 11\n"; // push ? (pop ? cnt : cnt+1) : (pop ? cnt-1 : cnt)
  T += "14 next 1 3 13\n";
  // No push when full, no pop when empty.
  T += "15 ugte 2 3 8\n";
  T += "16 and 2 4 15\n";
  T += "17 not 2 16\n";
  T += "18 constraint 17\n";
  T += "19 zero 1\n";
  T += "20 eq 2 3 19\n";
  T += "21 and 2 5 20\n";
  T += "22 not 2 21\n";
  T += "23 constraint 22\n";
  T += "24 ugt 2 3 8\n";
  T += "25 bad 24\n";
  return T;
}

struct Row {
  std::string Name;
  std::string Family;
  ChcStatus Expected;
  std::string Text;
};

} // namespace

int main(int Argc, char **Argv) {
  uint64_t TimeoutMs = 10000;
  std::string Config = "Ret(T,MBP(1))";
  std::string JsonPath = "BENCH_ts.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--timeout-ms") && I + 1 < Argc)
      TimeoutMs = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--config") && I + 1 < Argc)
      Config = Argv[++I];
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: ts_suite [--timeout-ms N] "
                           "[--config NAME] [--json FILE]\n");
      return 1;
    }
  }
  auto Opts = SolverOptions::parse(Config);
  if (!Opts) {
    std::fprintf(stderr, "bad config: %s\n", Config.c_str());
    return 1;
  }
  Opts->TimeoutMs = TimeoutMs;

  std::vector<Row> Rows;
  for (unsigned W : {8u, 16u, 32u, 64u}) {
    Rows.push_back({"counter_safe_w" + num(W), "counter", ChcStatus::Sat,
                    counterBtor2(W, "safe")});
    Rows.push_back({"counter_unsafe_w" + num(W), "counter",
                    ChcStatus::Unsat, counterBtor2(W, "unsafe")});
    Rows.push_back({"counter_wrap_w" + num(W), "counter", ChcStatus::Unsat,
                    counterBtor2(W, "wrap")});
  }
  for (unsigned D : {4u, 8u, 16u, 32u})
    Rows.push_back(
        {"fifo_d" + num(D), "fifo", ChcStatus::Sat, fifoBtor2(D)});

  std::printf("%-20s %-8s %-8s %9s %10s\n", "instance", "expect", "got",
              "seconds", "smt-checks");
  unsigned Solved = 0;
  bool Sound = true;
  double Wall = 0;
  std::string Json;
  for (const Row &B : Rows) {
    TermContext Ctx;
    Btor2Result BR = parseBtor2(Ctx, B.Text);
    if (!BR.Ok) {
      std::fprintf(stderr, "%s: generated text failed to parse: %s\n",
                   B.Name.c_str(), BR.Error.c_str());
      return 1;
    }
    ChcSystem Sys = BR.Ts->encodeChc();
    SolverResult R = solveChcSystem(Sys, *Opts);
    Wall += R.Seconds;
    if (R.Status == B.Expected)
      ++Solved;
    else if (R.Status != ChcStatus::Unknown)
      Sound = false;
    std::printf("%-20s %-8s %-8s %9.3f %10llu%s\n", B.Name.c_str(),
                chcStatusName(B.Expected), chcStatusName(R.Status),
                R.Seconds, static_cast<unsigned long long>(R.Stats.SmtChecks),
                R.Status != B.Expected && R.Status != ChcStatus::Unknown
                    ? "   <- WRONG"
                    : "");
    std::fflush(stdout);
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"family\": \"%s\", "
                  "\"expected\": \"%s\", \"got\": \"%s\", "
                  "\"seconds\": %.4f, \"smt_checks\": %llu}",
                  B.Name.c_str(), B.Family.c_str(),
                  chcStatusName(B.Expected), chcStatusName(R.Status),
                  R.Seconds,
                  static_cast<unsigned long long>(R.Stats.SmtChecks));
    if (!Json.empty())
      Json += ",\n";
    Json += Buf;
  }

  std::printf("solved %u/%zu in %.3f s%s\n", Solved, Rows.size(), Wall,
              Sound ? "" : "  [UNSOUND VERDICT]");

  std::FILE *F = std::fopen(JsonPath.c_str(), "w");
  if (F) {
    std::fprintf(F,
                 "{\n  \"config\": \"%s\",\n  \"timeout_ms\": %llu,\n"
                 "  \"instances\": [\n%s\n  ],\n  \"solved\": %u,\n"
                 "  \"total\": %zu,\n  \"wall_seconds\": %.4f,\n"
                 "  \"sound\": %s\n}\n",
                 Config.c_str(),
                 static_cast<unsigned long long>(TimeoutMs), Json.c_str(),
                 Solved, Rows.size(), Wall, Sound ? "true" : "false");
    std::fclose(F);
  } else {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  }
  return Sound ? 0 : 1;
}
