//===- bench/portfolio_coop.cpp - Cooperative vs. blind portfolio ---------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The lemma-exchange experiment: run a fixed engine portfolio over paper
// instances twice — blind (every member solves solo) and cooperative (the
// same members attached to one LemmaExchange bus, importing each other's
// core-minimized frame lemmas) — and compare the summed SMT checks to a
// definitive answer.
//
// Members run SEQUENTIALLY in config order in both modes, with refine-step
// budgets instead of wall-clock deadlines, so both sums are pure functions
// of the configuration: the ratio printed here is byte-reproducible and CI
// enforces a no-regression floor on it (--min-ratio, default 1.5). The
// sequential schedule is also the honest way to count work — a threaded
// race would conflate the exchange's effect with scheduling noise (see
// EXPERIMENTS.md).
//
//   portfolio_coop [--refine-budget N] [--min-ratio R] [--json FILE]
//
// Exit status: 0 when every definitive verdict matches ground truth in
// both modes AND the cooperative mode meets the floor; 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "runtime/Exchange.h"
#include "solver/ChcSolve.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mucyc;

namespace {

// SpacerTS runs first: it converges quickly on the suite below and seeds
// the bus, so the trace engines behind it import a useful frame library
// instead of exploring from scratch.
const char *Configs[] = {"SpacerTS(fig1)", "Ret(T,MBP(1))", "Yld(T,MBP(1))"};
constexpr size_t K = sizeof(Configs) / sizeof(Configs[0]);

/// The tree-shaped max counter (z' = max(x, y) + 1 from z = 0, bad z == B)
/// at bounds where the blind portfolio's trace members burn their whole
/// refine budget on the deep counterexample search — the regime the
/// exchange exists for. Same shape as the suite's treemax family, at
/// bounds the suite does not carry.
NormalizedChc treeMax(TermContext &C, int64_t B) {
  TermRef X = C.mkFreshVar("tm!x", Sort::Int);
  TermRef Y = C.mkFreshVar("tm!y", Sort::Int);
  TermRef Z = C.mkFreshVar("tm!z", Sort::Int);
  auto I = [&](int64_t V) { return C.mkIntConst(V); };
  return makeNormalized(
      C, {C.node(X).Var}, {C.node(Y).Var}, {C.node(Z).Var},
      C.mkEq(Z, I(0)),
      C.mkOr(C.mkAnd(C.mkGe(X, Y), C.mkEq(Z, C.mkAdd(X, I(1)))),
             C.mkAnd(C.mkLt(X, Y), C.mkEq(Z, C.mkAdd(Y, I(1))))),
      C.mkEq(Z, I(B)));
}

struct ModeRow {
  uint64_t SmtChecks = 0;
  uint64_t Published = 0;
  uint64_t Imported = 0;
  uint64_t Rejected = 0;
  uint64_t CoreShrink = 0;
  std::string Verdicts; // "unsat/unsat/unknown" in config order.
  bool Wrong = false;   // Some definitive verdict contradicted ground truth.
};

/// Solves \p B once per config, sequentially; \p Bus non-null means the
/// members share lemmas over it (fresh bus per instance).
ModeRow runMode(const BenchInstance &B, uint64_t RefineBudget,
                LemmaExchange *Bus) {
  ModeRow Row;
  for (size_t I = 0; I < K; ++I) {
    TermContext C;
    NormalizedChc N = B.Build(C);
    SolverOptions Opts = *SolverOptions::parse(Configs[I]);
    Opts.MaxRefineSteps = RefineBudget;
    if (Bus) {
      Opts.ShareLemmas = true;
      Opts.Share = Bus->port(I);
    }
    ChcSolver S(C, N, Opts);
    SolverResult R = S.solve();
    Row.SmtChecks += R.Stats.SmtChecks;
    Row.Published += R.Stats.LemmasPublished;
    Row.Imported += R.Stats.LemmasImported;
    Row.Rejected += R.Stats.LemmasRejected;
    Row.CoreShrink += R.Stats.CoreShrink;
    if (I)
      Row.Verdicts += "/";
    Row.Verdicts += chcStatusName(R.Status);
    if (R.Status != ChcStatus::Unknown && R.Status != B.Expected)
      Row.Wrong = true;
  }
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t RefineBudget = 300;
  double MinRatio = 1.5;
  std::string JsonPath = "BENCH_portfolio.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--refine-budget") && I + 1 < Argc)
      RefineBudget = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--min-ratio") && I + 1 < Argc)
      MinRatio = std::strtod(Argv[++I], nullptr);
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: portfolio_coop [--refine-budget N] "
                   "[--min-ratio R] [--json FILE]\n");
      return 1;
    }
  }

  struct Pick {
    const char *Name;
    std::function<NormalizedChc(TermContext &)> Build;
    ChcStatus Expected;
  };
  // Two groups. The paper systems are easy for every member: they bound
  // the exchange's overhead (admission re-checks cost a handful of checks
  // and buy little). The deep treemax instances are where cooperation
  // pays: blind, the trace engines diverge into their refine budget; on
  // the bus, SpacerTS's frame library prunes their search by several
  // hundred checks each. The floor is on the SUM, so the overhead of the
  // easy group is paid inside the ratio, not hidden.
  std::vector<Pick> Picks = {
      {"paper_ex4", [](TermContext &C) { return paperExample4(C); },
       ChcStatus::Unsat},
      {"paper_ex5", [](TermContext &C) { return paperExample5(C); },
       ChcStatus::Sat},
      {"appendixC", [](TermContext &C) { return appendixCSystem(C); },
       ChcStatus::Unsat},
      {"mccarthy91", [](TermContext &C) { return mcCarthy91(C); },
       ChcStatus::Sat},
      {"treemax_10", [](TermContext &C) { return treeMax(C, 10); },
       ChcStatus::Unsat},
      {"treemax_12", [](TermContext &C) { return treeMax(C, 12); },
       ChcStatus::Unsat},
      {"treemax_14", [](TermContext &C) { return treeMax(C, 14); },
       ChcStatus::Unsat},
  };

  uint64_t BlindTotal = 0, CoopTotal = 0;
  bool Sound = true;
  std::string Rows;
  for (const Pick &P : Picks) {
    BenchInstance B{P.Name, "paper", true, P.Expected, P.Build};
    ModeRow Blind = runMode(B, RefineBudget, nullptr);
    LemmaExchange Bus(K);
    ModeRow Coop = runMode(B, RefineBudget, &Bus);
    BlindTotal += Blind.SmtChecks;
    CoopTotal += Coop.SmtChecks;
    Sound = Sound && !Blind.Wrong && !Coop.Wrong;

    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"name\": \"%s\", \"blind_checks\": %llu, "
        "\"coop_checks\": %llu, \"blind_verdicts\": \"%s\", "
        "\"coop_verdicts\": \"%s\", \"published\": %llu, "
        "\"imported\": %llu, \"rejected\": %llu, \"core_shrink\": %llu}",
        P.Name, static_cast<unsigned long long>(Blind.SmtChecks),
        static_cast<unsigned long long>(Coop.SmtChecks),
        Blind.Verdicts.c_str(), Coop.Verdicts.c_str(),
        static_cast<unsigned long long>(Coop.Published),
        static_cast<unsigned long long>(Coop.Imported),
        static_cast<unsigned long long>(Coop.Rejected),
        static_cast<unsigned long long>(Coop.CoreShrink));
    if (!Rows.empty())
      Rows += ",\n";
    Rows += Buf;
    std::printf("%-12s blind=%-8llu coop=%-8llu (%s -> %s)\n", P.Name,
                static_cast<unsigned long long>(Blind.SmtChecks),
                static_cast<unsigned long long>(Coop.SmtChecks),
                Blind.Verdicts.c_str(), Coop.Verdicts.c_str());
  }

  double Ratio = CoopTotal ? static_cast<double>(BlindTotal) /
                                 static_cast<double>(CoopTotal)
                           : 0.0;
  std::printf("total blind=%llu coop=%llu ratio=%.2fx (floor %.2fx) %s\n",
              static_cast<unsigned long long>(BlindTotal),
              static_cast<unsigned long long>(CoopTotal), Ratio, MinRatio,
              Sound ? "" : "[UNSOUND VERDICT]");

  std::FILE *F = std::fopen(JsonPath.c_str(), "w");
  if (F) {
    std::fprintf(F,
                 "{\n  \"configs\": [\"%s\", \"%s\", \"%s\"],\n"
                 "  \"refine_budget\": %llu,\n  \"instances\": [\n%s\n  ],\n"
                 "  \"blind_total_checks\": %llu,\n"
                 "  \"coop_total_checks\": %llu,\n"
                 "  \"checks_ratio\": %.4f,\n  \"min_ratio\": %.2f,\n"
                 "  \"sound\": %s\n}\n",
                 Configs[0], Configs[1], Configs[2],
                 static_cast<unsigned long long>(RefineBudget), Rows.c_str(),
                 static_cast<unsigned long long>(BlindTotal),
                 static_cast<unsigned long long>(CoopTotal), Ratio, MinRatio,
                 Sound ? "true" : "false");
    std::fclose(F);
  } else {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }

  return (Sound && Ratio >= MinRatio) ? 0 : 1;
}
