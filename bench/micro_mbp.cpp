//===- bench/micro_mbp.cpp - MBP vs QE microbenchmarks --------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Substrate ablation (google-benchmark): the cost of one model-based
// projection versus one full quantifier elimination on the same formula
// families, scaling the number of atoms. This is the mechanism behind the
// paper's observation (Section 7.2) that using QE as the counterexample
// method "significantly degraded the performance": QE enumerates every
// disjunct where MBP produces one.
//
//===----------------------------------------------------------------------===//

#include "mbp/Mbp.h"
#include "mbp/Qe.h"
#include "smt/SmtSolver.h"

#include <benchmark/benchmark.h>

using namespace mucyc;

namespace {

/// Builds phi(x, ys) = /\_i (x in window i shifted by y_i) \/ ..., a
/// disjunction of N interval constraints whose projection has ~N disjuncts.
struct MbpWorkload {
  TermContext C;
  TermRef Phi;
  std::vector<VarId> Elim;
  Model M;

  explicit MbpWorkload(int N) {
    TermRef X = C.mkVar("x", Sort::Int);
    VarId XV = C.node(X).Var;
    Elim = {XV};
    std::vector<TermRef> Disj;
    for (int I = 0; I < N; ++I) {
      TermRef Y = C.mkVar("y" + std::to_string(I), Sort::Int);
      // Interval windows only: divisibility constraints multiply the
      // residue classes QE must enumerate and blow the comparison out of
      // benchmarkable range (QE already loses by orders of magnitude).
      Disj.push_back(C.mkAnd(C.mkGe(X, Y),
                             C.mkLe(X, C.mkAdd(Y, C.mkIntConst(2 + I)))));
    }
    Phi = C.mkOr(Disj);
    // A model in the first disjunct.
    M.set(XV, Value::number(Rational(0), Sort::Int));
    for (int I = 0; I < N; ++I) {
      TermRef Y = C.mkVar("y" + std::to_string(I), Sort::Int);
      M.set(C.node(Y).Var, Value::number(Rational(-100 * (I + 1)), Sort::Int));
    }
    // Ensure the first window covers x = 0: y0 = 0.
    M.set(C.node(C.mkVar("y0", Sort::Int)).Var,
          Value::number(Rational(0), Sort::Int));
  }
};

void BM_MbpLazyProject(benchmark::State &State) {
  MbpWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    TermRef R = mbp(W.C, MbpStrategy::LazyProject, W.Elim, W.Phi, W.M);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_MbpLazyProject)->Arg(2)->Arg(4)->Arg(8);

void BM_FullQe(benchmark::State &State) {
  MbpWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    TermRef R = qeExists(W.C, W.Elim, W.Phi);
    benchmark::DoNotOptimize(R);
  }
}
// QE cost grows with the cube combinations it enumerates (roughly 3^N for
// N overlapping windows); keep N small so the sweep stays benchmarkable.
BENCHMARK(BM_FullQe)->Arg(1)->Arg(2)->Arg(3);

void BM_MbpModelDiagram(benchmark::State &State) {
  MbpWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    TermRef R = mbp(W.C, MbpStrategy::ModelDiagram, W.Elim, W.Phi, W.M);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_MbpModelDiagram)->Arg(2)->Arg(4)->Arg(8);

/// Cooper elimination with divisibility constraints of growing modulus.
void BM_MbpIntDivisibility(benchmark::State &State) {
  TermContext C;
  TermRef X = C.mkVar("dx", Sort::Int), Y = C.mkVar("dy", Sort::Int);
  VarId XV = C.node(X).Var;
  int64_t D = State.range(0);
  TermRef Phi = C.mkAnd({C.mkGe(X, Y), C.mkLe(X, C.mkAdd(Y, C.mkIntConst(D))),
                         C.mkDivides(BigInt(D), X)});
  Model M;
  M.set(XV, Value::number(Rational(0), Sort::Int));
  M.set(C.node(Y).Var, Value::number(Rational(0), Sort::Int));
  for (auto _ : State) {
    TermRef R = mbp(C, MbpStrategy::LazyProject, {XV}, Phi, M);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_MbpIntDivisibility)->Arg(3)->Arg(17)->Arg(97);

} // namespace

BENCHMARK_MAIN();
