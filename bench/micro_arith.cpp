//===- bench/micro_arith.cpp - Arithmetic kernel microbenchmarks ----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Throughput of the exact-arithmetic kernel underneath the whole solving
// stack: BigInt small-value fast paths (inline int64 with overflow-guarded
// spill to heap limbs), Rational normalization, frontier carry chains, and
// term interning on the per-context kid arena.
//
// Besides the google-benchmark fixture suite, `--json [PATH]` runs the
// fast-vs-forced-heap differential comparison that gates the fast path: a
// fixed deterministic mix of small-value BigInt/Rational operations executed
// once with the fast representation and once under ScopedForceHeap. The two
// runs must produce identical value digests (hashes are representation
// independent), and the fast mode must clear a CI-enforced speedup floor —
// the exit status is 0 only when both hold.
//
//===----------------------------------------------------------------------===//

#include "term/Term.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace mucyc;

namespace {

/// Deterministic operand stream (no global RNG state: every run of every
/// mode sees the same sequence).
uint64_t lcg(uint64_t &S) {
  S = S * 6364136223846793005ull + 1442695040888963407ull;
  return S;
}

/// A signed operand with |v| < 2^31, never zero.
int64_t smallOperand(uint64_t &S) {
  int64_t V = static_cast<int64_t>(lcg(S) >> 33) - (int64_t(1) << 30);
  return V == 0 ? 1 : V;
}

//===----------------------------------------------------------------------===
// Fixture suite
//===----------------------------------------------------------------------===

/// Shared deterministic operand pools, regenerated per benchmark so each
/// google-benchmark repetition sees identical data.
class ArithFixture : public benchmark::Fixture {
public:
  void SetUp(const benchmark::State &) override {
    if (!A.empty())
      return;
    uint64_t S = 0x9e3779b97f4a7c15ull;
    for (int I = 0; I < 1024; ++I) {
      A.push_back(BigInt(smallOperand(S)));
      B.push_back(BigInt(smallOperand(S)));
    }
  }

  std::vector<BigInt> A, B;
};

BENCHMARK_DEFINE_F(ArithFixture, SmallAddSubChain)(benchmark::State &State) {
  for (auto _ : State) {
    BigInt Acc(0);
    for (size_t I = 0; I < A.size(); ++I)
      Acc = Acc + A[I] - B[I];
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK_REGISTER_F(ArithFixture, SmallAddSubChain);

BENCHMARK_DEFINE_F(ArithFixture, SmallMulDivMod)(benchmark::State &State) {
  for (auto _ : State) {
    size_t H = 0;
    for (size_t I = 0; I < A.size(); ++I) {
      BigInt P = A[I] * B[I]; // |a|,|b| < 2^31: the product stays inline.
      BigInt Q, R;
      BigInt::divMod(P, B[I], Q, R);
      H ^= Q.hash() + R.hash();
    }
    benchmark::DoNotOptimize(H);
  }
}
BENCHMARK_REGISTER_F(ArithFixture, SmallMulDivMod);

BENCHMARK_DEFINE_F(ArithFixture, SmallGcd)(benchmark::State &State) {
  for (auto _ : State) {
    size_t H = 0;
    for (size_t I = 0; I < A.size(); ++I)
      H ^= BigInt::gcd(A[I], B[I]).hash();
    benchmark::DoNotOptimize(H);
  }
}
BENCHMARK_REGISTER_F(ArithFixture, SmallGcd);

BENCHMARK_DEFINE_F(ArithFixture, RationalNormalize)(benchmark::State &State) {
  for (auto _ : State) {
    Rational Acc;
    for (size_t I = 0; I < A.size(); ++I)
      Acc += Rational(A[I], B[I]);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK_REGISTER_F(ArithFixture, RationalNormalize);

void BM_FrontierCarryChain(benchmark::State &State) {
  // Repeated steps across the small/heap boundary near ±2^62..2^63: every
  // iteration overflows into limbs and collapses back.
  BigInt Big(int64_t(1) << 62);
  BigInt Step((int64_t(1) << 62) - 1);
  for (auto _ : State) {
    size_t H = 0;
    for (int I = 0; I < 256; ++I) {
      BigInt Over = Big + Step;  // Spills to heap.
      BigInt Back = Over - Big;  // Collapses back to inline.
      H ^= Over.hash() + Back.hash();
    }
    benchmark::DoNotOptimize(H);
  }
}
BENCHMARK(BM_FrontierCarryChain);

void BM_TermInterningArena(benchmark::State &State) {
  // Builder-canonicalized atom construction: kid arrays land in the
  // per-context bump arena, coefficients in the small BigInt domain.
  for (auto _ : State) {
    TermContext C;
    TermRef X = C.mkVar("ax", Sort::Int), Y = C.mkVar("ay", Sort::Int);
    TermRef Acc = C.mkTrue();
    for (int I = 1; I <= 64; ++I) {
      TermRef Lhs = C.mkAdd(C.mkMul(Rational(I), X), C.mkMul(Rational(-I), Y));
      Acc = C.mkAnd(Acc, C.mkLe(Lhs, C.mkIntConst(I * 3)));
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_TermInterningArena);

//===----------------------------------------------------------------------===
// Fast-vs-forced-heap differential (--json)
//===----------------------------------------------------------------------===

/// One pass of the small-value mix: add/sub/mul/divMod/gcd plus Rational
/// normalize/compare over operands below 2^31, folding every result's
/// representation-independent hash into a digest. Returns the digest; the
/// caller times passes and cross-checks digests between modes.
uint64_t arithMixPass(unsigned Rounds) {
  uint64_t S = 0x517cc1b727220a95ull;
  uint64_t Digest = 0;
  for (unsigned R = 0; R < Rounds; ++R) {
    int64_t AV = smallOperand(S), BV = smallOperand(S);
    BigInt A(AV), B(BV);
    Digest ^= (A + B).hash();
    Digest = Digest * 31 + (A - B).hash();
    BigInt P = A * B;
    Digest ^= P.hash();
    BigInt Q, Rem;
    BigInt::divMod(P, B, Q, Rem);
    Digest = Digest * 31 + Q.hash() + Rem.hash();
    Digest ^= BigInt::gcd(A, B).hash();
    Rational X(A, B);
    Rational Y(BigInt(BV / 2 == 0 ? 1 : BV / 2), BigInt(3));
    Digest = Digest * 31 + (X + Y).hash() + (X * Y).hash();
    Digest ^= static_cast<uint64_t>(X.compare(Y) + 1);
  }
  return Digest;
}

int runDifferential(const char *Path) {
  constexpr unsigned Rounds = 200000;
  using Clock = std::chrono::steady_clock;

  // Warm both paths once so neither timed pass pays first-touch costs.
  arithMixPass(1000);
  {
    ScopedForceHeap FH(true);
    arithMixPass(1000);
  }

  auto FastStart = Clock::now();
  uint64_t FastDigest = arithMixPass(Rounds);
  double FastSec =
      std::chrono::duration<double>(Clock::now() - FastStart).count();

  uint64_t SlowDigest;
  double SlowSec;
  {
    ScopedForceHeap FH(true);
    auto SlowStart = Clock::now();
    SlowDigest = arithMixPass(Rounds);
    SlowSec = std::chrono::duration<double>(Clock::now() - SlowStart).count();
  }

  if (FastDigest != SlowDigest) {
    std::fprintf(stderr,
                 "FATAL: fast and forced-heap digests disagree "
                 "(%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(FastDigest),
                 static_cast<unsigned long long>(SlowDigest));
    return 1;
  }

  double FastRate = Rounds / FastSec, SlowRate = Rounds / SlowSec;
  double Speedup = FastRate / SlowRate;

  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path);
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"arith_small_value_mix\",\n"
               "  \"rounds\": %u,\n"
               "  \"fast_rounds_per_sec\": %.1f,\n"
               "  \"forced_heap_rounds_per_sec\": %.1f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"digest_match\": true\n"
               "}\n",
               Rounds, FastRate, SlowRate, Speedup);
  std::fclose(F);
  std::printf("arith_small_value_mix: %.0f rounds/s fast, %.0f forced-heap "
              "(%.2fx, floor 3.0) -> %s\n",
              FastRate, SlowRate, Speedup, Path);
  return Speedup >= 3.0 ? 0 : 3;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--json"))
      return runDifferential(I + 1 < argc ? argv[I + 1] : "BENCH_arith.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
