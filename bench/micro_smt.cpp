//===- bench/micro_smt.cpp - SMT substrate microbenchmarks ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Throughput of the substrate underneath every refinement loop: CDCL SAT
// on pigeonhole instances, simplex feasibility chains, integer equality
// elimination with divisibility, and whole SMT checks of the shape the
// refinement procedures issue (phi_L /\ phi_R /\ tau /\ not alpha).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include <benchmark/benchmark.h>

using namespace mucyc;

namespace {

void BM_SatPigeonhole(benchmark::State &State) {
  int N = static_cast<int>(State.range(0)); // N+1 pigeons, N holes: unsat.
  for (auto _ : State) {
    SatSolver S;
    std::vector<std::vector<uint32_t>> P(N + 1, std::vector<uint32_t>(N));
    for (auto &Row : P)
      for (uint32_t &V : Row)
        V = S.newVar();
    for (auto &Row : P) {
      std::vector<SatLit> C;
      for (uint32_t V : Row)
        C.push_back(SatLit(V, false));
      S.addClause(C);
    }
    for (int H = 0; H < N; ++H)
      for (int I = 0; I <= N; ++I)
        for (int J = I + 1; J <= N; ++J)
          S.addClause({SatLit(P[I][H], true), SatLit(P[J][H], true)});
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(4)->Arg(6)->Arg(7);

void BM_SmtDiamondEqualities(benchmark::State &State) {
  // Chains x0 = x1 +- 1, ..., with a final parity clash: exercises the
  // boolean search plus the integer equality elimination.
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TermContext C;
    SmtSolver S(C);
    TermRef Prev = C.mkVar("d0", Sort::Int);
    S.assertFormula(C.mkEq(Prev, C.mkIntConst(0)));
    for (int I = 1; I <= N; ++I) {
      TermRef Cur = C.mkVar("d" + std::to_string(I), Sort::Int);
      S.assertFormula(
          C.mkOr(C.mkEq(Cur, C.mkAdd(Prev, C.mkIntConst(1))),
                 C.mkEq(Cur, C.mkSub(Prev, C.mkIntConst(1)))));
      Prev = Cur;
    }
    // Parity violation: after N steps the value has parity of N.
    S.assertFormula(C.mkEq(Prev, C.mkIntConst(N % 2 == 0 ? 1 : 0)));
    benchmark::DoNotOptimize(S.check());
  }
}
BENCHMARK(BM_SmtDiamondEqualities)->Arg(4)->Arg(8)->Arg(12);

void BM_SmtRefinementShapedQuery(benchmark::State &State) {
  // The hot query of Algorithm 5's outer loop: frame(x) /\ frame(y) /\
  // tau(x,y,z) /\ not(alpha(z)), with frames of growing conjunction size.
  int Lemmas = static_cast<int>(State.range(0));
  TermContext C;
  TermRef X = C.mkVar("qx", Sort::Int), Y = C.mkVar("qy", Sort::Int),
          Z = C.mkVar("qz", Sort::Int);
  std::vector<TermRef> FrameX, FrameY;
  for (int I = 0; I < Lemmas; ++I) {
    FrameX.push_back(C.mkGe(X, C.mkIntConst(-I - 1)));
    FrameX.push_back(C.mkLe(X, C.mkIntConst(100 + I)));
    FrameY.push_back(C.mkGe(Y, C.mkIntConst(-I - 1)));
  }
  TermRef Tau = C.mkEq(Z, C.mkAdd(X, Y));
  TermRef NotAlpha = C.mkGt(Z, C.mkIntConst(400));
  for (auto _ : State) {
    auto M = SmtSolver::quickCheck(
        C, {C.mkAnd(FrameX), C.mkAnd(FrameY), Tau, NotAlpha});
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_SmtRefinementShapedQuery)->Arg(2)->Arg(8)->Arg(24);

void BM_SmtDivisibilityStack(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TermContext C;
    SmtSolver S(C);
    TermRef X = C.mkVar("vx", Sort::Int);
    for (int I = 0; I < N; ++I)
      S.assertFormula(C.mkDivides(BigInt(2 + I), X));
    S.assertFormula(C.mkGe(X, C.mkIntConst(1)));
    S.assertFormula(C.mkLe(X, C.mkIntConst(100000)));
    benchmark::DoNotOptimize(S.check());
  }
}
BENCHMARK(BM_SmtDivisibilityStack)->Arg(2)->Arg(4)->Arg(6);

} // namespace

BENCHMARK_MAIN();
