//===- bench/micro_smt.cpp - SMT substrate microbenchmarks ----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Throughput of the substrate underneath every refinement loop: CDCL SAT
// on pigeonhole instances, simplex feasibility chains, integer equality
// elimination with divisibility, and whole SMT checks of the shape the
// refinement procedures issue (phi_L /\ phi_R /\ tau /\ not alpha).
//
// Besides the google-benchmark suite, `--incremental-json [PATH]` runs the
// incremental-vs-one-shot comparison that backs the solver-pool design: a
// fixed search-heavy base queried under many cubes, once with a persistent
// push/assert/check/pop solver and once rebuilding a fresh solver per
// query. Emits checks/sec for both modes, the speedup, and the
// learned-clause reuse rate as JSON.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace mucyc;

namespace {

void BM_SatPigeonhole(benchmark::State &State) {
  int N = static_cast<int>(State.range(0)); // N+1 pigeons, N holes: unsat.
  for (auto _ : State) {
    SatSolver S;
    std::vector<std::vector<uint32_t>> P(N + 1, std::vector<uint32_t>(N));
    for (auto &Row : P)
      for (uint32_t &V : Row)
        V = S.newVar();
    for (auto &Row : P) {
      std::vector<SatLit> C;
      for (uint32_t V : Row)
        C.push_back(SatLit(V, false));
      S.addClause(C);
    }
    for (int H = 0; H < N; ++H)
      for (int I = 0; I <= N; ++I)
        for (int J = I + 1; J <= N; ++J)
          S.addClause({SatLit(P[I][H], true), SatLit(P[J][H], true)});
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(4)->Arg(6)->Arg(7);

void BM_SmtDiamondEqualities(benchmark::State &State) {
  // Chains x0 = x1 +- 1, ..., with a final parity clash: exercises the
  // boolean search plus the integer equality elimination.
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TermContext C;
    SmtSolver S(C);
    TermRef Prev = C.mkVar("d0", Sort::Int);
    S.assertFormula(C.mkEq(Prev, C.mkIntConst(0)));
    for (int I = 1; I <= N; ++I) {
      TermRef Cur = C.mkVar("d" + std::to_string(I), Sort::Int);
      S.assertFormula(
          C.mkOr(C.mkEq(Cur, C.mkAdd(Prev, C.mkIntConst(1))),
                 C.mkEq(Cur, C.mkSub(Prev, C.mkIntConst(1)))));
      Prev = Cur;
    }
    // Parity violation: after N steps the value has parity of N.
    S.assertFormula(C.mkEq(Prev, C.mkIntConst(N % 2 == 0 ? 1 : 0)));
    benchmark::DoNotOptimize(S.check());
  }
}
BENCHMARK(BM_SmtDiamondEqualities)->Arg(4)->Arg(8)->Arg(12);

void BM_SmtRefinementShapedQuery(benchmark::State &State) {
  // The hot query of Algorithm 5's outer loop: frame(x) /\ frame(y) /\
  // tau(x,y,z) /\ not(alpha(z)), with frames of growing conjunction size.
  int Lemmas = static_cast<int>(State.range(0));
  TermContext C;
  TermRef X = C.mkVar("qx", Sort::Int), Y = C.mkVar("qy", Sort::Int),
          Z = C.mkVar("qz", Sort::Int);
  std::vector<TermRef> FrameX, FrameY;
  for (int I = 0; I < Lemmas; ++I) {
    FrameX.push_back(C.mkGe(X, C.mkIntConst(-I - 1)));
    FrameX.push_back(C.mkLe(X, C.mkIntConst(100 + I)));
    FrameY.push_back(C.mkGe(Y, C.mkIntConst(-I - 1)));
  }
  TermRef Tau = C.mkEq(Z, C.mkAdd(X, Y));
  TermRef NotAlpha = C.mkGt(Z, C.mkIntConst(400));
  for (auto _ : State) {
    auto M = SmtSolver::quickCheck(
        C, {C.mkAnd(FrameX), C.mkAnd(FrameY), Tau, NotAlpha});
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_SmtRefinementShapedQuery)->Arg(2)->Arg(8)->Arg(24);

void BM_SmtDivisibilityStack(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TermContext C;
    SmtSolver S(C);
    TermRef X = C.mkVar("vx", Sort::Int);
    for (int I = 0; I < N; ++I)
      S.assertFormula(C.mkDivides(BigInt(2 + I), X));
    S.assertFormula(C.mkGe(X, C.mkIntConst(1)));
    S.assertFormula(C.mkLe(X, C.mkIntConst(100000)));
    benchmark::DoNotOptimize(S.check());
  }
}
BENCHMARK(BM_SmtDivisibilityStack)->Arg(2)->Arg(4)->Arg(6);

//===----------------------------------------------------------------------===
// Incremental-vs-one-shot comparison (--incremental-json)
//===----------------------------------------------------------------------===

/// The shared assertion base: a diamond equality chain d0 = 0,
/// d_i = d_{i-1} +- 1. Deciding whether d_N can hit a given value makes
/// the lazy DPLL(T) loop enumerate sign paths, refuting each with one
/// theory lemma. Those blocking lemmas are permanent (theory-valid, never
/// scope-guarded), so a persistent solver pays for the enumeration once
/// per queried constant while a fresh solver repeats it on every query —
/// exactly the workload the solver pool exists for.
std::vector<TermRef> incBase(TermContext &C, const std::vector<TermRef> &D) {
  std::vector<TermRef> Base{C.mkEq(D[0], C.mkIntConst(0))};
  for (size_t I = 1; I < D.size(); ++I)
    Base.push_back(
        C.mkOr(C.mkEq(D[I], C.mkAdd(D[I - 1], C.mkIntConst(1))),
               C.mkEq(D[I], C.mkSub(D[I - 1], C.mkIntConst(1)))));
  return Base;
}

/// Query i pins the chain end to a constant from a small cycling pool.
/// Odd constants are parity-unreachable (Unsat, full path enumeration);
/// even ones are reachable (Sat). Constants repeat across the run, so the
/// persistent solver's accumulated lemmas transfer to later queries.
std::vector<TermRef> incCube(TermContext &C, TermRef End, int I) {
  static const int Pool[6] = {1, 0, 3, 2, 5, 4};
  return {C.mkEq(End, C.mkIntConst(Pool[I % 6]))};
}

int runIncrementalComparison(const char *Path) {
  constexpr int ChainLen = 8, NQueries = 120;
  TermContext C;
  std::vector<TermRef> D;
  for (int I = 0; I <= ChainLen; ++I)
    D.push_back(C.mkVar("bd" + std::to_string(I), Sort::Int));
  std::vector<TermRef> Base = incBase(C, D);
  TermRef End = D[ChainLen];

  using Clock = std::chrono::steady_clock;
  std::vector<SmtStatus> IncVerdicts, OneShotVerdicts;
  IncVerdicts.reserve(NQueries);
  OneShotVerdicts.reserve(NQueries);

  // Incremental: one persistent solver, base asserted once; each query is
  // push / assert cube / check / pop.
  auto IncStart = Clock::now();
  SmtSolver Inc(C);
  for (TermRef F : Base)
    Inc.assertFormula(F);
  for (int I = 0; I < NQueries; ++I) {
    Inc.push();
    for (TermRef F : incCube(C, End, I))
      Inc.assertFormula(F);
    IncVerdicts.push_back(Inc.check());
    Inc.pop();
  }
  double IncSec = std::chrono::duration<double>(Clock::now() - IncStart).count();
  uint64_t IncLearned = Inc.satCore().numLearned();

  // One-shot: a fresh solver per query re-asserts the whole base.
  uint64_t OneShotLearned = 0;
  auto OneStart = Clock::now();
  for (int I = 0; I < NQueries; ++I) {
    SmtSolver S(C);
    for (TermRef F : Base)
      S.assertFormula(F);
    for (TermRef F : incCube(C, End, I))
      S.assertFormula(F);
    OneShotVerdicts.push_back(S.check());
    OneShotLearned += S.satCore().numLearned();
  }
  double OneSec = std::chrono::duration<double>(Clock::now() - OneStart).count();

  if (IncVerdicts != OneShotVerdicts) {
    std::fprintf(stderr,
                 "FATAL: incremental and one-shot verdicts disagree\n");
    return 1;
  }

  double IncRate = NQueries / IncSec, OneRate = NQueries / OneSec;
  double Speedup = IncRate / OneRate;
  // Reuse rate: fraction of the one-shot learning work the persistent
  // solver did NOT have to repeat (1 - learned_inc / learned_oneshot).
  double Reuse =
      OneShotLearned
          ? 1.0 - static_cast<double>(IncLearned) / OneShotLearned
          : 0.0;

  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path);
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"smt_incremental\",\n"
               "  \"queries\": %d,\n"
               "  \"chain_len\": %d,\n"
               "  \"incremental_checks_per_sec\": %.1f,\n"
               "  \"oneshot_checks_per_sec\": %.1f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"learned_clauses_incremental\": %llu,\n"
               "  \"learned_clauses_oneshot_total\": %llu,\n"
               "  \"learned_clause_reuse_rate\": %.3f\n"
               "}\n",
               NQueries, ChainLen, IncRate, OneRate, Speedup,
               static_cast<unsigned long long>(IncLearned),
               static_cast<unsigned long long>(OneShotLearned), Reuse);
  std::fclose(F);
  std::printf("smt_incremental: %.1f checks/s incremental, %.1f one-shot "
              "(%.2fx), reuse %.3f -> %s\n",
              IncRate, OneRate, Speedup, Reuse, Path);
  return Speedup >= 2.0 ? 0 : 3;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--incremental-json"))
      return runIncrementalComparison(I + 1 < argc
                                          ? argv[I + 1]
                                          : "BENCH_smt_incremental.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
