//===- bench/serve_crash.cpp - Crash-isolation & chaos availability -------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The robustness experiment behind BENCH_robustness.json, in two legs:
//
//  1. Isolation overhead. Every small-suite instance is solved twice
//     through solveRequest — inline (--isolate none) and in a forked
//     crash-isolated worker (--isolate crash), both store-less — and the
//     summed wall clocks are compared. The fork + child re-parse tax must
//     stay under a configurable ceiling (--max-overhead, default 2x):
//     isolation is only deployable as the daemon default if it does not
//     double the bill.
//
//  2. Availability under chaos. An in-process ServeDaemon with a
//     disk-backed store and --isolate crash semantics is driven through
//     one connection while the process-global ServiceFaultPlan SIGKILLs
//     every 3rd spawned worker and tears every 2nd store write at byte
//     64. Every request must still come back as a well-formed "result"
//     frame (availability floor: 100%), no definitive verdict may
//     contradict ground truth, and the chaos must demonstrably fire
//     (observed worker crashes and, on a restart scan of the same store
//     directory, quarantined torn entries) — otherwise the 100% claim is
//     vacuous. short-write chaos stays disarmed here by design: a torn
//     daemon reply is a *client*-visible fault, which is exactly what the
//     leg's availability metric must not conflate with daemon health.
//
//   serve_crash [--refine-budget N] [--max-overhead R] [--requests N]
//               [--json FILE]
//
// Exit status: 0 when both floors hold and every verdict is sound;
// 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "chc/Export.h"
#include "runtime/Serve.h"
#include "runtime/Worker.h"
#include "support/Fault.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace mucyc;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Renders a suite instance to SMT-LIB text once; both legs reuse it.
struct TextInstance {
  std::string Name;
  std::string Text;
  ChcStatus Expected;
};

std::vector<TextInstance> renderSmallSuite() {
  std::vector<TextInstance> Out;
  for (const BenchInstance &B : buildSmallSuite()) {
    TermContext C;
    NormalizedChc N = B.Build(C);
    Out.push_back({B.Name, exportSmtLib(C, N), B.Expected});
  }
  return Out;
}

SolveRequest makeRequest(const TextInstance &T, IsolateMode Mode,
                         uint64_t RefineBudget) {
  SolveRequest Req = SolveRequest::fromText(T.Text, SolverOptions());
  Req.Opts.Isolate = Mode;
  Req.Opts.MaxRefineSteps = RefineBudget;
  Req.NoStore = true;
  return Req;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t RefineBudget = 300;
  double MaxOverhead = 2.0;
  size_t Requests = 24;
  std::string JsonPath = "BENCH_robustness.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--refine-budget") && I + 1 < Argc)
      RefineBudget = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--max-overhead") && I + 1 < Argc)
      MaxOverhead = std::strtod(Argv[++I], nullptr);
    else if (!std::strcmp(Argv[I], "--requests") && I + 1 < Argc)
      Requests = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: serve_crash [--refine-budget N] "
                   "[--max-overhead R] [--requests N] [--json FILE]\n");
      return 1;
    }
  }

  std::vector<TextInstance> Suite = renderSmallSuite();

  //===--------------------------------------------------------------------===
  // Leg 1: isolation overhead, inline vs forked worker.
  //===--------------------------------------------------------------------===
  double InlineTotal = 0, IsolatedTotal = 0;
  bool Sound = true;
  std::string Rows;
  for (const TextInstance &T : Suite) {
    auto T0 = std::chrono::steady_clock::now();
    SolveResponse Inline =
        solveRequest(makeRequest(T, IsolateMode::None, RefineBudget));
    double InlineS = secondsSince(T0);
    T0 = std::chrono::steady_clock::now();
    SolveResponse Isolated =
        solveRequest(makeRequest(T, IsolateMode::Crash, RefineBudget));
    double IsolatedS = secondsSince(T0);
    InlineTotal += InlineS;
    IsolatedTotal += IsolatedS;
    // Both modes must agree with each other and with ground truth.
    if (Inline.Status != Isolated.Status)
      Sound = false;
    for (ChcStatus S : {Inline.Status, Isolated.Status})
      if (S != ChcStatus::Unknown && S != T.Expected)
        Sound = false;

    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"name\": \"%s\", \"status\": \"%s\", "
                  "\"inline_s\": %.6f, \"isolated_s\": %.6f}",
                  T.Name.c_str(), chcStatusName(Isolated.Status), InlineS,
                  IsolatedS);
    if (!Rows.empty())
      Rows += ",\n";
    Rows += Buf;
    std::printf("%-18s inline=%.4fs isolated=%.4fs (%s)\n", T.Name.c_str(),
                InlineS, IsolatedS, chcStatusName(Isolated.Status));
  }
  double Overhead = InlineTotal > 0 ? IsolatedTotal / InlineTotal : 0.0;
  std::printf("isolation overhead: %.2fx (ceiling %.2fx)%s\n", Overhead,
              MaxOverhead, Sound ? "" : " [UNSOUND VERDICT]");

  //===--------------------------------------------------------------------===
  // Leg 2: daemon availability under an armed service-boundary chaos plan.
  //===--------------------------------------------------------------------===
  std::filesystem::path StoreDir =
      std::filesystem::temp_directory_path() /
      ("mucyc-bench-crash-" + std::to_string(::getpid()));
  std::filesystem::remove_all(StoreDir);

  ServiceFaultPlan &Plan = ServiceFaultPlan::global();
  {
    std::string Err;
    if (!Plan.parse("kill-worker=3,tear-store=2@64", Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  }

  size_t Answered = 0, Flips = 0, ChaosRecoveries = 0;
  uint64_t WorkerCrashes = 0;
  {
    ServeOptions SO;
    SO.StoreDir = StoreDir.string();
    SO.Jobs = 2;
    SO.BaseOpts.Isolate = IsolateMode::Crash;
    SO.BaseOpts.MaxRetries = 2;
    SO.BaseOpts.MaxRefineSteps = RefineBudget;
    ServeDaemon D(SO);
    int Sp[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp) != 0) {
      std::perror("socketpair");
      return 1;
    }
    std::thread Conn([&D, Fd = Sp[1]] { D.serveConnection(Fd, Fd); });
    for (size_t I = 0; I < Requests; ++I) {
      const TextInstance &T = Suite[I % Suite.size()];
      WireMessage M;
      M.Verb = "solve";
      M.Body = T.Text;
      std::string Payload;
      WireMessage R;
      if (writeFrame(Sp[0], formatWireMessage(M)) &&
          readFrame(Sp[0], Payload, 16u << 20) == FrameStatus::Ok &&
          parseWireMessage(Payload, R, nullptr) && R.Verb == "result" &&
          !R.header("status").empty()) {
        ++Answered;
        std::string S = R.header("status");
        if (S != "unknown" && S != chcStatusName(T.Expected))
          ++Flips;
        // No FaultInjector is armed in this leg, so a multi-attempt answer
        // means the crash ladder respawned a chaos-killed worker.
        if (std::strtoull(R.header("attempts").c_str(), nullptr, 10) > 1)
          ++ChaosRecoveries;
      }
    }
    ::close(Sp[0]);
    Conn.join();
    ::close(Sp[1]);
    WorkerCrashes = D.stats().WorkerCrashes.load();
  }
  // Disarm: this plan is process-global state.
  Plan.KillWorkerEvery = Plan.TearStoreEvery = Plan.ShortWriteEvery = 0;

  // A restart-time recovery scan over the chaos-era store directory: every
  // torn write the plan landed under a final name must be caught by the
  // checksum line and quarantined, never served.
  uint64_t Quarantined = 0, Intact = 0;
  {
    ResultStore Recovered(StoreDir.string());
    Quarantined = Recovered.recovery().Quarantined;
    Intact = Recovered.recovery().Intact;
  }
  std::filesystem::remove_all(StoreDir);

  double Availability =
      Requests ? 100.0 * static_cast<double>(Answered) / Requests : 0.0;
  bool ChaosFired = (WorkerCrashes + ChaosRecoveries) > 0 && Quarantined > 0;
  std::printf("availability under chaos: %zu/%zu answered (%.1f%%), "
              "%zu verdict flips, %zu chaos-kill recoveries, %llu worker "
              "crashes, %llu torn writes quarantined on restart, %llu "
              "intact\n",
              Answered, Requests, Availability, Flips, ChaosRecoveries,
              static_cast<unsigned long long>(WorkerCrashes),
              static_cast<unsigned long long>(Quarantined),
              static_cast<unsigned long long>(Intact));
  if (!ChaosFired)
    std::printf("warning: chaos plan never fired; availability is vacuous\n");

  bool Pass = Sound && Overhead <= MaxOverhead && Availability >= 100.0 &&
              Flips == 0 && ChaosFired;

  std::FILE *F = std::fopen(JsonPath.c_str(), "w");
  if (F) {
    std::fprintf(
        F,
        "{\n  \"overhead\": {\n    \"refine_budget\": %llu,\n"
        "    \"instances\": [\n%s\n    ],\n"
        "    \"inline_total_s\": %.6f,\n    \"isolated_total_s\": %.6f,\n"
        "    \"overhead_ratio\": %.4f,\n    \"max_overhead\": %.2f\n  },\n"
        "  \"availability\": {\n    \"chaos_plan\": "
        "\"kill-worker=3,tear-store=2@64\",\n"
        "    \"requests\": %zu,\n    \"answered\": %zu,\n"
        "    \"availability_pct\": %.1f,\n    \"verdict_flips\": %zu,\n"
        "    \"chaos_kill_recoveries\": %zu,\n"
        "    \"worker_crashes\": %llu,\n"
        "    \"quarantined_on_restart\": %llu,\n"
        "    \"intact_on_restart\": %llu\n  },\n"
        "  \"sound\": %s,\n  \"pass\": %s\n}\n",
        static_cast<unsigned long long>(RefineBudget), Rows.c_str(),
        InlineTotal, IsolatedTotal, Overhead, MaxOverhead, Requests, Answered,
        Availability, Flips, ChaosRecoveries,
        static_cast<unsigned long long>(WorkerCrashes),
        static_cast<unsigned long long>(Quarantined),
        static_cast<unsigned long long>(Intact), Sound ? "true" : "false",
        Pass ? "true" : "false");
    std::fclose(F);
  } else {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }

  return Pass ? 0 : 1;
}
