//===- bench/divergence.cpp - Theorem 9 / Appendix C experiments ----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's divergence analysis (Sections 3.3, 5.2, Theorem 19 /
// Appendix C): the Fig. 15 "fixed" transition system still diverges on the
// system
//
//     P(-1),  H(0),  H(x) => H(x +- 1),  P(x) /\ H(x) => R(x),  R(x) => _|_
//
// because the cumulative under-approximation U defeats the finiteness
// argument, while the inductive procedures (Algorithms 4-6) terminate with
// UNSAT. This binary runs every engine on the Appendix C system under a
// fixed work budget and reports who concludes and at what cost; it also
// contrasts Ret(F,MBP(2)), whose progress loss is the Section 7.2.1
// observation.
//
// Usage: divergence [--timeout-ms N]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mucyc;
using namespace mucyc::bench;

int main(int Argc, char **Argv) {
  CommonArgs Args = CommonArgs::parse(Argc, Argv);
  if (Args.TimeoutMs == 1500)
    Args.TimeoutMs = 10000; // This experiment merits a longer default.
  const uint64_t StepBudget = 5000;

  const char *Configs[] = {
      "Ret(T,MBP(1))",    // RC (the paper's procedure).
      "Ret(T,MBP(2))",    // RC, strict snapshot.
      "Yld(T,MBP(1))",    // RC with coroutines.
      "NaiveMbp",         // Algorithm 4 (RC).
      "Ret(F,MBP(2))",    // Progress loss (Section 7.2.1).
      "Ret(F,Model)",     // GPDR: no image finiteness.
      "SpacerTS(fig1)",   // Fig. 1 (Komuravelli et al. 2015 reading).
      "SpacerTS(fig15)",  // Fig. 15 "fix": still cumulative U.
      "SpacerTS(fig1,Ulev)", // Original per-level U management.
  };

  std::printf("Appendix C divergence experiment (budget: %llu SMT checks or "
              "%llu ms)\n\n",
              static_cast<unsigned long long>(StepBudget),
              static_cast<unsigned long long>(Args.TimeoutMs));
  std::printf("%-22s %-8s %6s %10s %9s\n", "configuration", "answer",
              "depth", "smt-checks", "seconds");

  for (const char *Cfg : Configs) {
    TermContext C;
    NormalizedChc N = appendixCSystem(C);
    auto Opts = SolverOptions::parse(Cfg);
    Opts->TimeoutMs = Args.TimeoutMs;
    Opts->MaxRefineSteps = StepBudget;
    ChcSolver S(C, N, *Opts);
    SolverResult R = S.solve();
    std::printf("%-22s %-8s %6d %10llu %9.3f%s\n", Cfg,
                chcStatusName(R.Status), R.Depth,
                static_cast<unsigned long long>(R.Stats.SmtChecks), R.Seconds,
                R.Status == ChcStatus::Unknown ? "   <- budget exhausted"
                                               : "");
    std::fflush(stdout);
  }

  std::printf("\nReading: the RC configurations answer unsat quickly; "
              "engines relying on\ncumulative counterexample unions or "
              "non-invariant projection arguments burn\nthe budget, which "
              "is the finite-time signature of the divergence the paper\n"
              "proves for them.\n");
  return 0;
}
