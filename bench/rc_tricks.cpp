//===- bench/rc_tricks.cpp - Section 7.2.1-7.2.3 comparisons --------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Focused reproduction of the textual claims in Sections 7.2.1-7.2.3:
//
//  7.2.1  Model vs MBP(0) vs MBP(1) vs MBP(2): MBP beats Model; for Ret,
//         F+MBP(2) loses progress while T+MBP(2) restores it; accumulation
//         (T) costs a little on SAT and helps UNSAT.
//  7.2.2  Yld(T,_) vs Yld(F,_): query weakening via interpolation helps.
//  7.2.3  Optimizations: Ind helps; Cex helps UNSAT; Que/Mon do not help.
//
// Each block prints the relevant configuration pairs side by side over the
// full suite so the direction of every comparison is visible.
//
// Usage: rc_tricks [--timeout-ms N]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mucyc;
using namespace mucyc::bench;

namespace {
struct Score {
  size_t Sat = 0, Unsat = 0;
  double TotalTime = 0;
};

Score scoreConfig(const std::vector<BenchInstance> &Suite,
                  const std::string &Cfg, uint64_t TimeoutMs) {
  Score Sc;
  for (const BenchInstance &B : Suite) {
    RunRow Row = runInstance(B, Cfg, TimeoutMs);
    if (Row.correct()) {
      (Row.Got == ChcStatus::Sat ? Sc.Sat : Sc.Unsat) += 1;
      Sc.TotalTime += Row.Seconds;
    } else {
      Sc.TotalTime += static_cast<double>(TimeoutMs) / 1000.0;
    }
  }
  return Sc;
}

void block(const char *Title, const std::vector<std::string> &Configs,
           const std::vector<BenchInstance> &Suite, uint64_t TimeoutMs) {
  std::printf("\n== %s\n%-24s %5s %7s %10s\n", Title, "configuration", "sat",
              "unsat", "time(s)");
  for (const std::string &Cfg : Configs) {
    Score Sc = scoreConfig(Suite, Cfg, TimeoutMs);
    std::printf("%-24s %5zu %7zu %10.1f\n", Cfg.c_str(), Sc.Sat, Sc.Unsat,
                Sc.TotalTime);
    std::fflush(stdout);
  }
}
} // namespace

int main(int Argc, char **Argv) {
  CommonArgs Args = CommonArgs::parse(Argc, Argv);
  std::vector<BenchInstance> Suite = buildSuite();
  std::printf("RC-trick experiments over %zu instances, timeout %llu ms\n",
              Suite.size(), static_cast<unsigned long long>(Args.TimeoutMs));

  block("7.2.1 cex method (Ret)",
        {"Ret(F,Model)", "Ret(F,MBP(0))", "Ret(F,MBP(1))", "Ret(F,MBP(2))",
         "Ret(T,MBP(1))", "Ret(T,MBP(2))"},
        Suite, Args.TimeoutMs);
  block("7.2.1 cex method (Yld)",
        {"Yld(T,Model)", "Yld(T,MBP(0))", "Yld(T,MBP(1))", "Yld(T,MBP(2))"},
        Suite, Args.TimeoutMs);
  block("7.2.2 query weakening",
        {"Yld(F,MBP(1))", "Yld(T,MBP(1))", "Yld(F,MBP(0))", "Yld(T,MBP(0))"},
        Suite, Args.TimeoutMs);
  block("7.2.3 optimizations on Ret(F,MBP(0))",
        {"Ret(F,MBP(0))", "Ind(Ret(F,MBP(0)))", "Cex(Ret(F,MBP(0)))",
         "Que(Ret(F,MBP(0)))", "Mon(Ret(F,MBP(0)))"},
        Suite, Args.TimeoutMs);
  block("7.2.3 optimizations on Yld(T,MBP(1))",
        {"Yld(T,MBP(1))", "Ind(Yld(T,MBP(1)))", "Cex(Yld(T,MBP(1)))",
         "Que(Yld(T,MBP(1)))", "Mon(Yld(T,MBP(1)))"},
        Suite, Args.TimeoutMs);
  return 0;
}
