//===- examples/mucyc_serve.cpp - Persistent solving daemon ---------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The mucyc-serve daemon: accepts CHC solve jobs over the length-prefixed
// frame protocol (runtime/Serve.h), on a UNIX domain socket or stdio, and
// answers them through the unified SolveRequest/SolveResponse API with the
// two-tier result store in front. Identical or alpha-renamed resubmissions
// return a Verify-certified cached answer without touching an engine; a
// crashing job degrades to an `unknown` response and the daemon survives.
//
//   mucyc-serve --socket PATH [--store-dir DIR] [shared solver flags]
//   mucyc-serve --stdio       [--store-dir DIR] [shared solver flags]
//
// Shared solver flags (solver/Options.h parseSolverOptions): --config,
// --jobs, --timeout-ms (the default per-request deadline), --mem-limit-mb,
// --max-retries, --max-refine-steps, --chaos-seed, --no-incremental,
// --verify, --isolate, --hard-mem-mb, --hard-cpu-sec. Per-request headers
// override them. Unlike the offline tools the daemon defaults to
// --isolate crash: one crashing job must never take down the service.
//
// Overload hardening: --max-pending bounds the scheduler queue (excess
// solves get a typed "overloaded" frame), --max-connections caps
// concurrent clients, --read-stall-ms / --idle-timeout-ms disconnect
// slow-loris half-frames and idle connections. --chaos-plan injects
// deterministic service-boundary faults (see support/Fault.h), e.g.
// "kill-worker=7,tear-store=5@64" for the CI crash leg.
//
// Exit status: 0 clean shutdown, 1 socket error, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "runtime/Serve.h"
#include "support/Fault.h"

#include <csignal>
#include <cstdio>
#include <cstring>

using namespace mucyc;

static ServeDaemon *TheDaemon = nullptr;

static void onSignal(int) {
  if (TheDaemon)
    TheDaemon->stop(); // Atomic stores + shutdown/close only: signal-safe.
}

static void usage() {
  std::fprintf(
      stderr,
      "usage: mucyc-serve (--socket PATH | --stdio) [--store-dir DIR]\n"
      "                   [--max-frame-bytes N] [--config NAME] [--jobs N]\n"
      "                   [--timeout-ms N] [--mem-limit-mb N]\n"
      "                   [--max-retries N] [--max-refine-steps N]\n"
      "                   [--chaos-seed S] [--no-incremental] [--verify]\n"
      "                   [--isolate none|crash|always] [--hard-mem-mb N]\n"
      "                   [--hard-cpu-sec N] [--max-pending N]\n"
      "                   [--max-connections N] [--read-stall-ms N]\n"
      "                   [--idle-timeout-ms N] [--chaos-plan SPEC]\n"
      "--timeout-ms is the default per-request deadline; request headers\n"
      "override the shared solver flags per job. The daemon defaults to\n"
      "--isolate crash (pass --isolate none for in-process execution).\n"
      "--chaos-plan injects deterministic service faults, e.g.\n"
      "  kill-worker=7,tear-store=5@64,short-write=9\n");
}

int main(int Argc, char **Argv) {
  CliOptions Cli;
  Cli.TimeoutMs = 0; // A service default of "no deadline"; jobs opt in.
  // The daemon's blast-radius default: fork each cold engine run so a
  // crashing job degrades to a typed unknown instead of killing the
  // service. --isolate none restores in-process execution.
  Cli.Opts.Isolate = IsolateMode::Crash;
  std::string Err;
  if (!parseSolverOptions(Argc, Argv, Cli, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    usage();
    return 2;
  }

  ServeOptions SO;
  SO.Jobs = Cli.Jobs;
  SO.BaseOpts = Cli.Opts;
  SO.DefaultDeadlineMs = Cli.TimeoutMs;
  bool Stdio = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--socket" && I + 1 < Argc)
      SO.SocketPath = Argv[++I];
    else if (A == "--store-dir" && I + 1 < Argc)
      SO.StoreDir = Argv[++I];
    else if (A == "--max-frame-bytes" && I + 1 < Argc)
      SO.MaxFrameBytes = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--max-pending" && I + 1 < Argc)
      SO.MaxPending =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (A == "--max-connections" && I + 1 < Argc)
      SO.MaxConnections =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (A == "--read-stall-ms" && I + 1 < Argc)
      SO.ReadStallMs = std::atoi(Argv[++I]);
    else if (A == "--idle-timeout-ms" && I + 1 < Argc)
      SO.IdleTimeoutMs = std::atoi(Argv[++I]);
    else if (A == "--chaos-plan" && I + 1 < Argc) {
      std::string PlanErr;
      if (!ServiceFaultPlan::global().parse(Argv[++I], PlanErr)) {
        std::fprintf(stderr, "error: %s\n", PlanErr.c_str());
        usage();
        return 2;
      }
    } else if (A == "--stdio")
      Stdio = true;
    else if (A == "--help") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (Stdio == !SO.SocketPath.empty()) {
    std::fprintf(stderr, "error: need exactly one of --socket / --stdio\n");
    usage();
    return 2;
  }

  try {
    ServeDaemon Daemon(std::move(SO));
    TheDaemon = &Daemon;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    int Rc = Stdio ? Daemon.runStdio() : Daemon.runSocket();
    TheDaemon = nullptr;
    return Rc;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }
}
