//===- examples/quickstart.cpp - First steps with mucyc -------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: build a CHC system with the programmatic API, solve it with
// the paper's flagship configuration Ret(T, MBP(1)) (Algorithm 5 with
// counterexample accumulation and the Remark 16 snapshot refresh), and
// inspect the result.
//
// The system is the classic bounded counter:
//
//     x = 0                 => P(x)
//     P(x) /\ x < 5 /\ x'=x+1 => P(x')
//     P(x) /\ x > 5         => false        (assertion: x stays <= 5)
//
//===----------------------------------------------------------------------===//

#include "chc/Chc.h"
#include "solver/ChcSolve.h"

#include <cstdio>

using namespace mucyc;

int main() {
  TermContext Ctx;

  // 1. Declare the predicate and build the clauses.
  ChcSystem Sys(Ctx);
  PredId P = Sys.addPred("P", {Sort::Int});
  TermRef X = Ctx.mkVar("x", Sort::Int);
  TermRef XNext = Ctx.mkVar("x_next", Sort::Int);

  Clause Init;
  Init.Constraint = Ctx.mkEq(X, Ctx.mkIntConst(0));
  Init.Head = PredApp{P, {X}};
  Sys.addClause(Init);

  Clause Step;
  Step.Body.push_back(PredApp{P, {X}});
  Step.Constraint = Ctx.mkAnd(Ctx.mkLt(X, Ctx.mkIntConst(5)),
                              Ctx.mkEq(XNext, Ctx.mkAdd(X, Ctx.mkIntConst(1))));
  Step.Head = PredApp{P, {XNext}};
  Sys.addClause(Step);

  Clause Query;
  Query.Body.push_back(PredApp{P, {X}});
  Query.Constraint = Ctx.mkGt(X, Ctx.mkIntConst(5));
  Sys.addClause(Query);

  std::printf("System:\n%s\n", Sys.toString().c_str());

  // 2. Pick a configuration (paper names work verbatim) and solve.
  SolverOptions Opts = *SolverOptions::parse("Ret(T,MBP(1))");
  Opts.TimeoutMs = 30000;
  Opts.VerifyResult = true; // Double-check the answer before returning it.

  ChcSolution Solution;
  SolverResult R = solveChcSystem(Sys, Opts, /*Preprocess=*/true, &Solution);

  // 3. Inspect.
  std::printf("status    : %s\n", chcStatusName(R.Status));
  std::printf("depth     : %d\n", R.Depth);
  std::printf("SMT checks: %llu, MBP calls: %llu, interpolations: %llu\n",
              static_cast<unsigned long long>(R.Stats.SmtChecks),
              static_cast<unsigned long long>(R.Stats.MbpCalls),
              static_cast<unsigned long long>(R.Stats.ItpCalls));

  if (R.Status == ChcStatus::Sat) {
    for (const auto &[Pred, Def] : Solution) {
      std::printf("%s(", Sys.pred(Pred).Name.c_str());
      for (size_t I = 0; I < Def.Params.size(); ++I)
        std::printf("%s%s", I ? ", " : "",
                    Ctx.varInfo(Def.Params[I]).Name.c_str());
      std::printf(") := %s\n", Ctx.toString(Def.Body).c_str());
    }
    std::printf("solution checks against all clauses: %s\n",
                Sys.checkSolution(Solution) ? "yes" : "NO (bug!)");
  } else if (R.Status == ChcStatus::Unsat) {
    std::printf("counterexample region: %s\n",
                R.CexPiece.isValid() ? Ctx.toString(R.CexPiece).c_str() : "-");
  }
  return R.Status == ChcStatus::Sat ? 0 : 1;
}
