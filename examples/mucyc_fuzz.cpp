//===- examples/mucyc_fuzz.cpp - Differential fuzzing CLI -----------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `mucyc-fuzz` command line: generates random SMT formulas and CHC
// systems, checks them against the metamorphic/differential oracles
// (src/testgen/Oracles.h), shrinks any failure to a minimal SMT-LIB2 repro,
// and prints a deterministic report. Two runs with the same flags produce
// byte-identical stdout, so a (seed, n) pair in a bug report reproduces the
// exact failing instance anywhere.
//
//   mucyc-fuzz [--seed S] [--n N]
//              [--domains smt,mbp,itp,chc,inc,chaos,share,arith,ts]
//              [--repro-dir DIR] [--no-shrink] [--refine-budget N]
//              [--clauses N] [--coeff-mag N] [--jobs N]
//              [--no-incremental] [--verdicts FILE] [--chaos-seed S]
//
// The shared solver flags (--jobs, --no-incremental, --chaos-seed) are
// parsed by solver/Options.h parseSolverOptions() — the same helper every
// mucyc tool uses — then folded into the fuzz configuration; the remaining
// flags are fuzz-specific.
//
// --no-incremental forces every raced engine onto the fresh-solver path;
// --verdicts writes the per-chc-instance consensus verdict lines to FILE,
// so a default run and a --no-incremental run can be byte-compared.
//
// The chaos domain (off by default) solves each generated system clean and
// under deterministic fault injection and requires that faults only ever
// degrade verdicts, never flip them; --chaos-seed fixes the root of the
// fault-schedule streams (default: derived from --seed). The share domain
// (also off by default) solves each generated system blind and with all
// engines cooperating over a lemma-exchange bus and requires that sharing
// never flips a verdict either. The arith domain (also off by default)
// replays a frontier-biased operand trace through every BigInt/Rational
// operation on the small-value fast path and again under the forced-heap
// representation, requiring op-for-op identical results. The ts domain
// (also off by default) generates BTOR2 transition systems, checks the
// frontend's print/parse/encode round-trip properties, and races the
// encoded CHC system through the same engine-agreement oracle as chc.
//
// Exit status: 0 when no oracle fired, 1 on violations, 2 on usage errors
// (internal errors surface as "uncaught-*" violations, not aborts).
//
//===----------------------------------------------------------------------===//

#include "solver/Options.h"
#include "testgen/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace mucyc;

static void usage() {
  std::fprintf(
      stderr,
      "usage: mucyc-fuzz [--seed S] [--n N]\n"
      "                  [--domains smt,mbp,itp,chc,inc,chaos,share,arith,ts]\n"
      "                  [--repro-dir DIR] [--no-shrink]\n"
      "                  [--refine-budget N] [--clauses N] [--coeff-mag N]\n"
      "                  [--jobs N] [--no-incremental] [--verdicts FILE]\n"
      "                  [--chaos-seed S]\n"
      "Generates N random instances (round-robin over the enabled\n"
      "domains), checks each against its oracle, and shrinks failures to\n"
      "minimal SMT-LIB2 repros. Output is a pure function of the flags.\n");
}

static bool parseDomains(const std::string &Spec, FuzzDomains &D) {
  D = FuzzDomains{false, false, false, false, false, false, false, false,
                  false};
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Name = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name == "smt")
      D.Smt = true;
    else if (Name == "mbp")
      D.Mbp = true;
    else if (Name == "itp")
      D.Itp = true;
    else if (Name == "chc")
      D.Chc = true;
    else if (Name == "inc")
      D.Inc = true;
    else if (Name == "chaos")
      D.Chaos = true;
    else if (Name == "share")
      D.Share = true;
    else if (Name == "arith")
      D.Arith = true;
    else if (Name == "ts")
      D.Ts = true;
    else
      return false;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return D.Smt || D.Mbp || D.Itp || D.Chc || D.Inc || D.Chaos || D.Share ||
         D.Arith || D.Ts;
}

int main(int Argc, char **Argv) {
  FuzzConfig Cfg;
  std::string VerdictsPath;

  // Shared flags first: --jobs / --no-incremental / --chaos-seed have the
  // same spelling and semantics here as in mucyc, mucyc-serve and
  // mucyc-client. parseSolverOptions compacts them out of argv; the loop
  // below only sees fuzz-specific flags.
  CliOptions Cli;
  std::string CliErr;
  if (!parseSolverOptions(Argc, Argv, Cli, CliErr)) {
    std::fprintf(stderr, "error: %s\n", CliErr.c_str());
    usage();
    return 2;
  }
  Cfg.Race.Jobs = Cli.Jobs;
  Cfg.Race.NoIncremental = Cli.Opts.NoIncremental;
  Cfg.ChaosSeed = Cli.Opts.ChaosSeed;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--seed" && I + 1 < Argc)
      Cfg.Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--n" && I + 1 < Argc)
      Cfg.N = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (A == "--domains" && I + 1 < Argc) {
      if (!parseDomains(Argv[++I], Cfg.Domains)) {
        std::fprintf(stderr, "error: bad --domains '%s'\n", Argv[I]);
        return 2;
      }
    } else if (A == "--repro-dir" && I + 1 < Argc)
      Cfg.ReproDir = Argv[++I];
    else if (A == "--no-shrink")
      Cfg.Shrink = false;
    else if (A == "--refine-budget" && I + 1 < Argc)
      Cfg.Race.RefineBudget = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--clauses" && I + 1 < Argc)
      Cfg.Knobs.Clauses =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (A == "--coeff-mag" && I + 1 < Argc)
      Cfg.Knobs.CoeffMag = std::strtoll(Argv[++I], nullptr, 10);
    else if (A == "--verdicts" && I + 1 < Argc)
      VerdictsPath = Argv[++I];
    else if (A == "--help") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  // runFuzz absorbs per-instance escapes as "uncaught-*" violations; this
  // boundary covers everything else (report formatting, I/O) so a campaign
  // always ends with a diagnostic line, never std::terminate.
  try {
    FuzzReport Rep = runFuzz(Cfg);
    std::fputs(Rep.summary(Cfg).c_str(), stdout);
    if (!VerdictsPath.empty()) {
      std::ofstream OS(VerdictsPath);
      if (!OS) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     VerdictsPath.c_str());
        return 2;
      }
      for (const std::string &L : Rep.ChcVerdicts)
        OS << L << "\n";
    }
    return Rep.ok() ? 0 : 1;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: uncaught exception: %s\n", E.what());
    return 2;
  }
}
