//===- examples/export_suite.cpp - Materialize the suite as .smt2 ---------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Writes every benchmark-suite instance as an SMT-LIB2 HORN file so the
// suite can be fed to any CHC solver (including `mucyc` itself, or external
// tools like Z3/Spacer, Golem and Eldarica where available) for apples-to-
// apples comparisons.
//
//   export_suite [output-dir]     (default: ./suite_smt2)
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "chc/Export.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace mucyc;

int main(int Argc, char **Argv) {
  std::filesystem::path Dir = Argc > 1 ? Argv[1] : "suite_smt2";
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    std::fprintf(stderr, "error: cannot create '%s'\n", Dir.c_str());
    return 1;
  }
  size_t Count = 0;
  for (const BenchInstance &B : buildSuite()) {
    TermContext C;
    NormalizedChc N = B.Build(C);
    std::filesystem::path File = Dir / (B.Name + ".smt2");
    std::ofstream Out(File);
    Out << "; family: " << B.Family
        << "  expected: " << chcStatusName(B.Expected) << "\n"
        << exportSmtLib(C, N);
    ++Count;
  }
  std::printf("wrote %zu instances to %s\n", Count, Dir.c_str());
  return 0;
}
