//===- examples/recursive_functions.cpp - Nonlinear CHCs in mucyc ---------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Nonlinear (tree-shaped) CHCs arise from programs with two recursive calls
// per activation — the case that separates Spacer/GPDR from plain linear
// PDR and the reason the paper's traces are binary trees. This example
// verifies:
//
//   * McCarthy's 91 function: m(n) = 91 for every n <= 100;
//   * a "tournament" recursion f(x, y) = f-join with max, bounded depth;
//   * the paper's Example 10 (z = |x - y| from {3}).
//
// It runs each system under the Ret and Yld engines and under the GPDR-like
// Model configuration to show where image-finite MBP matters.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Suite.h"
#include "solver/ChcSolve.h"

#include <cstdio>

using namespace mucyc;

int main() {
  struct Case {
    const char *Name;
    NormalizedChc (*Build)(TermContext &);
    ChcStatus Expected;
  };
  auto BuildAbs5 = [](TermContext &C) { return paperExample10(C, 5); };
  auto BuildAbs2 = [](TermContext &C) { return paperExample10(C, 2); };
  Case Cases[] = {
      {"mccarthy91", &mcCarthy91, ChcStatus::Sat},
      {"absdiff<=5", +BuildAbs5, ChcStatus::Sat},
      {"absdiff<=2", +BuildAbs2, ChcStatus::Unsat},
      {"appendixC", &appendixCSystem, ChcStatus::Unsat},
  };
  const char *Configs[] = {"Ret(T,MBP(1))", "Yld(T,MBP(1))", "Ret(F,Model)"};

  int Failures = 0;
  for (const Case &K : Cases) {
    std::printf("== %s (expected %s)\n", K.Name,
                chcStatusName(K.Expected));
    for (const char *Cfg : Configs) {
      TermContext Ctx;
      NormalizedChc N = K.Build(Ctx);
      SolverOptions Opts = *SolverOptions::parse(Cfg);
      Opts.TimeoutMs = 20000;
      Opts.VerifyResult = true;
      SolverResult R = ChcSolver(Ctx, N, Opts).solve();
      std::printf("   %-14s -> %-7s depth=%d smt=%-6llu %.3fs%s\n", Cfg,
                  chcStatusName(R.Status), R.Depth,
                  static_cast<unsigned long long>(R.Stats.SmtChecks),
                  R.Seconds,
                  R.Status == ChcStatus::Unknown
                      ? "  (gave up -- expected for non-RC configs)"
                      : R.Status == K.Expected ? "" : "  ** MISMATCH **");
      if (R.Status != ChcStatus::Unknown && R.Status != K.Expected)
        ++Failures;
    }
  }
  std::printf("\nNote how Ret(F,Model) — the GPDR-style configuration whose "
              "projection\nlacks image finiteness (Remark 17) — struggles on "
              "systems where the\ncounterexample candidates form infinite "
              "families, while the MBP-based\nconfigurations terminate.\n");
  return Failures;
}
