//===- examples/mucyc_client.cpp - Serve client & load generator ----------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Client for the mucyc-serve daemon: connects to its UNIX socket, replays
// one or more SMT-LIB2 CHC files as "solve" frames, and prints one line per
// file — `<name> <status>` on stdout (byte-comparable with offline `mucyc`
// verdicts), plus cache provenance with --provenance. Doubles as the load
// generator and the serve bench:
//
//   mucyc-client --socket PATH [shared solver flags] [--provenance]
//                [--want-solution] [--no-store] [--tags STR] FILE...
//   mucyc-client --socket PATH --bench OUT.json [--warm-dir DIR]
//                [--min-speedup X] FILE...
//   mucyc-client --socket PATH --ping | --stats   # liveness / counters
//
// Bench mode sends every file twice — a cold pass, then a warm pass using
// the file of the same basename from --warm-dir when given (e.g. an
// alpha-renamed copy) or the identical file otherwise — and writes latency
// percentiles per pass plus the warm-hit speedup to OUT.json. With
// --min-speedup X the exit status is 1 when mean cold / mean warm-hit
// latency falls below X.
//
// Exit status: 0 ok, 1 bench floor missed or any unknown verdict in bench
// mode, 2 usage/connect error, 3 protocol error.
//
//===----------------------------------------------------------------------===//

#include "runtime/Serve.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mucyc;

namespace {

struct RunRow {
  std::string Name;
  std::string Status;
  std::string Cache;
  bool Verified = false;
  double Seconds = 0; ///< Client-side round-trip latency.
};

int connectSocket(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return -1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Idx = P * (Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Idx);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Idx - Lo;
  return Sorted[Lo] * (1 - Frac) + Sorted[Hi] * Frac;
}

void emitPass(std::ostream &Out, const char *Name,
              const std::vector<RunRow> &Rows) {
  std::vector<double> Lat;
  for (const RunRow &R : Rows)
    Lat.push_back(R.Seconds);
  std::sort(Lat.begin(), Lat.end());
  double Sum = 0;
  for (double L : Lat)
    Sum += L;
  Out << "  \"" << Name << "\": {\n"
      << "    \"instances\": " << Rows.size() << ",\n"
      << "    \"mean_s\": " << (Lat.empty() ? 0 : Sum / Lat.size()) << ",\n"
      << "    \"p50_s\": " << percentile(Lat, 0.5) << ",\n"
      << "    \"p90_s\": " << percentile(Lat, 0.9) << ",\n"
      << "    \"p99_s\": " << percentile(Lat, 0.99) << ",\n"
      << "    \"results\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I)
    Out << "      {\"name\": \"" << Rows[I].Name << "\", \"status\": \""
        << Rows[I].Status << "\", \"cache\": \"" << Rows[I].Cache
        << "\", \"verified\": " << (Rows[I].Verified ? "true" : "false")
        << ", \"seconds\": " << Rows[I].Seconds << "}"
        << (I + 1 < Rows.size() ? "," : "") << "\n";
  Out << "    ]\n  }";
}

void usage() {
  std::fprintf(
      stderr,
      "usage: mucyc-client --socket PATH [--config NAME] [--timeout-ms N]\n"
      "                    [--mem-limit-mb N] [--max-retries N]\n"
      "                    [--max-refine-steps N] [--chaos-seed S]\n"
      "                    [--no-incremental] [--verify] [--provenance]\n"
      "                    [--want-solution] [--no-store] [--tags STR]\n"
      "                    [--bench OUT.json [--warm-dir DIR]\n"
      "                     [--min-speedup X]] FILE...\n"
      "       mucyc-client --socket PATH --ping | --stats\n");
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  Cli.TimeoutMs = 0;
  std::string Err;
  if (!parseSolverOptions(Argc, Argv, Cli, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    usage();
    return 2;
  }

  std::string Socket, BenchOut, WarmDir, Tags;
  bool Provenance = false, WantSolution = false, NoStore = false;
  bool DoPing = false, DoStats = false;
  double MinSpeedup = 0;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--socket" && I + 1 < Argc)
      Socket = Argv[++I];
    else if (A == "--bench" && I + 1 < Argc)
      BenchOut = Argv[++I];
    else if (A == "--warm-dir" && I + 1 < Argc)
      WarmDir = Argv[++I];
    else if (A == "--min-speedup" && I + 1 < Argc)
      MinSpeedup = std::strtod(Argv[++I], nullptr);
    else if (A == "--tags" && I + 1 < Argc)
      Tags = Argv[++I];
    else if (A == "--provenance")
      Provenance = true;
    else if (A == "--want-solution")
      WantSolution = true;
    else if (A == "--no-store")
      NoStore = true;
    else if (A == "--ping")
      DoPing = true;
    else if (A == "--stats")
      DoStats = true;
    else if (A == "--help") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      Files.push_back(A);
    }
  }
  if (Socket.empty() || (Files.empty() && !DoPing && !DoStats)) {
    usage();
    return 2;
  }

  int Fd = connectSocket(Socket);
  if (Fd < 0) {
    std::fprintf(stderr, "error: cannot connect to '%s'\n", Socket.c_str());
    return 2;
  }

  // One control round-trip (ping/stats); replies are header-only, so the
  // sorted-map iteration prints the counters in a stable order.
  auto Control = [&](const char *Verb) -> bool {
    WireMessage M;
    M.Verb = Verb;
    if (!writeFrame(Fd, formatWireMessage(M))) {
      std::fprintf(stderr, "error: write to daemon failed\n");
      return false;
    }
    std::string Payload;
    if (readFrame(Fd, Payload, 1u << 30) != FrameStatus::Ok) {
      std::fprintf(stderr, "error: daemon closed the connection\n");
      return false;
    }
    WireMessage Reply;
    std::string PErr;
    if (!parseWireMessage(Payload, Reply, &PErr)) {
      std::fprintf(stderr, "error: bad response frame: %s\n", PErr.c_str());
      return false;
    }
    std::printf("%s\n", Reply.Verb.c_str());
    for (const auto &[K, V] : Reply.Headers)
      std::printf("%s %s\n", K.c_str(), V.c_str());
    return true;
  };
  if (DoPing && !Control("ping"))
    return 3;
  if (DoStats && !Control("stats"))
    return 3;
  if (Files.empty())
    return 0;

  // One solve round-trip; fills R and returns false on a protocol error.
  auto Solve = [&](const std::string &Path, RunRow &R) -> bool {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();

    WireMessage M;
    M.Verb = "solve";
    if (Cli.Config != "Ret(T,MBP(1))")
      M.Headers["config"] = Cli.Config;
    if (Cli.TimeoutMs)
      M.Headers["deadline-ms"] = std::to_string(Cli.TimeoutMs);
    if (Cli.Opts.MemLimitMb)
      M.Headers["mem-limit-mb"] = std::to_string(Cli.Opts.MemLimitMb);
    if (Cli.Opts.MaxRetries)
      M.Headers["max-retries"] = std::to_string(Cli.Opts.MaxRetries);
    if (Cli.Opts.MaxRefineSteps)
      M.Headers["max-refine-steps"] =
          std::to_string(Cli.Opts.MaxRefineSteps);
    if (Cli.Opts.ChaosSeed)
      M.Headers["chaos-seed"] = std::to_string(Cli.Opts.ChaosSeed);
    if (Cli.Opts.NoIncremental)
      M.Headers["no-incremental"] = "1";
    if (Cli.Opts.VerifyResult)
      M.Headers["verify"] = "1";
    if (WantSolution)
      M.Headers["want-solution"] = "1";
    if (NoStore)
      M.Headers["no-store"] = "1";
    if (!Tags.empty())
      M.Headers["tags"] = Tags;
    M.Body = Buf.str();

    auto Start = std::chrono::steady_clock::now();
    if (!writeFrame(Fd, formatWireMessage(M))) {
      std::fprintf(stderr, "error: write to daemon failed\n");
      return false;
    }
    std::string Payload;
    if (readFrame(Fd, Payload, 1u << 30) != FrameStatus::Ok) {
      std::fprintf(stderr, "error: daemon closed the connection\n");
      return false;
    }
    R.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

    WireMessage Reply;
    std::string PErr;
    if (!parseWireMessage(Payload, Reply, &PErr)) {
      std::fprintf(stderr, "error: bad response frame: %s\n", PErr.c_str());
      return false;
    }
    if (Reply.Verb == "error") {
      std::fprintf(stderr, "error: daemon: %s\n",
                   Reply.header("detail").c_str());
      return false;
    }
    R.Name = baseName(Path);
    R.Status = Reply.header("status", "unknown");
    R.Cache = Reply.header("cache", "cold");
    R.Verified = Reply.header("verified") == "1";
    if (WantSolution && !Reply.Body.empty())
      std::fputs(Reply.Body.c_str(), stdout);
    return true;
  };

  int Rc = 0;
  if (BenchOut.empty()) {
    // Load-generator mode: replay the files once, in order.
    for (const std::string &F : Files) {
      RunRow R;
      if (!Solve(F, R)) {
        Rc = 3;
        break;
      }
      if (Provenance)
        std::printf("%s %s %s%s\n", R.Name.c_str(), R.Status.c_str(),
                    R.Cache.c_str(), R.Verified ? " verified" : "");
      else
        std::printf("%s %s\n", R.Name.c_str(), R.Status.c_str());
      std::fflush(stdout);
    }
  } else {
    // Bench mode: cold pass, then warm pass (alpha-renamed copies from
    // --warm-dir when given), then percentiles + warm-hit speedup.
    std::vector<RunRow> Cold, Warm;
    for (const std::string &F : Files) {
      RunRow R;
      if (!Solve(F, R))
        return 3;
      Cold.push_back(R);
    }
    for (const std::string &F : Files) {
      std::string Path =
          WarmDir.empty() ? F : WarmDir + "/" + baseName(F);
      RunRow R;
      if (!Solve(Path, R))
        return 3;
      Warm.push_back(R);
    }

    double ColdSum = 0, WarmHitSum = 0;
    size_t Hits = 0;
    for (size_t I = 0; I < Warm.size(); ++I) {
      if (Warm[I].Cache == "cold")
        continue;
      ++Hits;
      ColdSum += Cold[I].Seconds;
      WarmHitSum += Warm[I].Seconds;
    }
    double Speedup =
        (Hits && WarmHitSum > 0) ? ColdSum / WarmHitSum : 0;

    std::ofstream Out(BenchOut);
    Out << "{\n";
    emitPass(Out, "cold", Cold);
    Out << ",\n";
    emitPass(Out, "warm", Warm);
    Out << ",\n  \"warm_hits\": " << Hits
        << ",\n  \"warm_hit_speedup\": " << Speedup << "\n}\n";
    Out.close();

    std::fprintf(stderr,
                 "; serve bench: %zu instances, %zu warm hits, "
                 "speedup %.1fx\n",
                 Cold.size(), Hits, Speedup);
    for (const RunRow &R : Cold)
      if (R.Status == "unknown")
        Rc = 1;
    if (MinSpeedup > 0 && Speedup < MinSpeedup) {
      std::fprintf(stderr, "; serve bench: speedup %.1fx below floor %.1fx\n",
                   Speedup, MinSpeedup);
      Rc = 1;
    }
  }
  ::close(Fd);
  return Rc;
}
