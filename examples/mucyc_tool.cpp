//===- examples/mucyc_tool.cpp - Command-line CHC solver ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `mucyc` command-line solver: reads an SMT-LIB2 HORN problem or a
// BTOR2 transition system (--format, or auto-detected from the .btor/.btor2
// extension and the content), runs a configuration (paper names, default
// Ret(T,MBP(1))), and prints sat/unsat plus the witness. With --portfolio,
// races a comma-separated list of configurations on the runtime's thread
// pool: the first definitive answer wins and cooperatively cancels the
// rest.
//
// Every path routes through the unified SolveRequest/SolveResponse API
// (runtime/Request.h): single solves and retry-ladder solves are one code
// path now, and --store-dir points the same fingerprint-keyed result store
// the serve daemon uses at a directory, so repeated invocations on
// identical or alpha-renamed systems answer from a Verify-certified cache.
//
//   mucyc <file.smt2|file.btor2> [--format smt2|btor2] [--config NAME]
//         [--timeout-ms N] [--no-preprocess]
//         [--print-solution] [--verify] [--stats] [--store-dir DIR]
//         [--portfolio "CFG1,CFG2,..."] [--jobs N] [--no-incremental]
//         [--mem-limit-mb N] [--max-retries N] [--max-refine-steps N]
//         [--chaos-seed S] [--share-lemmas] [--share-import-budget N]
//         [--isolate none|crash|always] [--hard-mem-mb N] [--hard-cpu-sec N]
//
// The shared solver flags (--config, --jobs, --timeout-ms, --mem-limit-mb,
// --max-retries, --max-refine-steps, --chaos-seed, --no-incremental,
// --verify, --share-lemmas, --share-import-budget, --isolate,
// --hard-mem-mb, --hard-cpu-sec) are parsed by
// solver/Options.h parseSolverOptions(), the same helper mucyc-fuzz,
// mucyc-serve and mucyc-client use, so flag semantics are identical across
// the tools. --share-lemmas only does something under --portfolio: the
// members exchange core-minimized frame lemmas over a shared bus, each
// re-checking a peer's lemma in its own context before admitting it.
//
// Exit status: 0 solved (sat/unsat), 1 unknown, 2 usage/input error,
// 3 internal error (a diagnostic line is printed; never an uncaught
// std::terminate).
//
//===----------------------------------------------------------------------===//

#include "chc/Parser.h"
#include "runtime/Portfolio.h"
#include "ts/Btor2.h"
#include "runtime/Request.h"
#include "support/Error.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

using namespace mucyc;

static void usage() {
  std::fprintf(
      stderr,
      "usage: mucyc <file.smt2|file.btor2> [--format smt2|btor2]\n"
      "             [--config NAME] [--timeout-ms N]\n"
      "             [--no-preprocess] [--print-solution] [--verify] "
      "[--stats]\n"
      "             [--store-dir DIR]\n"
      "             [--portfolio \"CFG1,CFG2,...\"] [--jobs N]\n"
      "             [--no-incremental] [--mem-limit-mb N]\n"
      "             [--max-retries N] [--max-refine-steps N] "
      "[--chaos-seed S]\n"
      "             [--share-lemmas] [--share-import-budget N]\n"
      "             [--isolate none|crash|always] [--hard-mem-mb N]\n"
      "             [--hard-cpu-sec N]\n"
      "configs: Ret(b,cex) | Yld(b,cex) | SpacerTS(fig1|fig15[,Ulev]) |\n"
      "         Naive | NaiveMbp | Solve, optionally wrapped in\n"
      "         Ind(...) Cex(...) Que(...) Mon(...);\n"
      "         b in {T,F}, cex in {Model, QE, MBP(0|1|2)}\n"
      "--portfolio races the listed configs (first sat/unsat answer wins\n"
      "and cancels the rest); --jobs bounds its concurrency (default:\n"
      "one thread per member); --store-dir caches certified answers by\n"
      "the system's canonical fingerprint; --share-lemmas makes the\n"
      "members cooperate by exchanging re-checked frame lemmas;\n"
      "--isolate crash|always forks each solve into a sandboxed worker\n"
      "process (--hard-mem-mb / --hard-cpu-sec set its OS rlimits) so a\n"
      "crashing engine degrades to a typed unknown (default: none)\n");
}

static int runMain(int Argc, char **Argv) {
  if (Argc < 2) {
    usage();
    return 2;
  }
  CliOptions Cli;
  std::string CliErr;
  if (!parseSolverOptions(Argc, Argv, Cli, CliErr)) {
    std::fprintf(stderr, "error: %s\n", CliErr.c_str());
    usage();
    return 2;
  }

  std::string Path, Portfolio, StoreDir, FormatArg;
  bool Preprocess = true, PrintSolution = false, Stats = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--portfolio" && I + 1 < Argc)
      Portfolio = Argv[++I];
    else if (A == "--format" && I + 1 < Argc)
      FormatArg = Argv[++I];
    else if (A == "--store-dir" && I + 1 < Argc)
      StoreDir = Argv[++I];
    else if (A == "--no-preprocess")
      Preprocess = false;
    else if (A == "--print-solution")
      PrintSolution = true;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--help") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", A.c_str());
      return 2;
    } else {
      Path = A;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  // Input language: explicit --format wins, then the file extension, then
  // a content sniff (BTOR2 node lines start with a numeric id).
  InputFormat Format = InputFormat::Auto;
  if (FormatArg == "smt2")
    Format = InputFormat::SmtLib2;
  else if (FormatArg == "btor2")
    Format = InputFormat::Btor2;
  else if (!FormatArg.empty()) {
    std::fprintf(stderr, "error: bad --format '%s' (smt2|btor2)\n",
                 FormatArg.c_str());
    return 2;
  }
  if (Format == InputFormat::Auto) {
    auto EndsWith = [&](const char *Suffix) {
      size_t N = std::strlen(Suffix);
      return Path.size() >= N && Path.compare(Path.size() - N, N, Suffix) == 0;
    };
    if (EndsWith(".btor2") || EndsWith(".btor"))
      Format = InputFormat::Btor2;
    else if (EndsWith(".smt2"))
      Format = InputFormat::SmtLib2;
    else
      Format = looksLikeBtor2(Buf.str()) ? InputFormat::Btor2
                                         : InputFormat::SmtLib2;
  }

  {
    // Validate the input upfront so malformed files exit 2 (input error)
    // with the parser's diagnostic, not 1 (unknown) out of the solve path.
    TermContext Ctx;
    if (Format == InputFormat::Btor2) {
      Btor2Result BR = parseBtor2(Ctx, Buf.str());
      if (!BR.Ok) {
        std::fprintf(stderr, "error: parse failed. %s\n", BR.Error.c_str());
        return 2;
      }
    } else {
      ParseResult PR = parseChc(Ctx, Buf.str());
      if (!PR.Ok) {
        std::fprintf(stderr, "error: parse failed. %s\n", PR.Error.c_str());
        return 2;
      }
    }
  }

  auto PrintStats = [](const char *Tag, int Depth, double Seconds,
                       const SolveStats &S) {
    std::fprintf(stderr,
                 ";%s depth=%d time=%.3fs smt=%llu cache-hits=%llu "
                 "cache-evicts=%llu pool-retires=%llu mbp=%llu itp=%llu "
                 "refines=%llu retries=%llu\n",
                 Tag, Depth, Seconds,
                 static_cast<unsigned long long>(S.SmtChecks),
                 static_cast<unsigned long long>(S.SmtCacheHits),
                 static_cast<unsigned long long>(S.SmtCacheEvicts),
                 static_cast<unsigned long long>(S.PoolRetires),
                 static_cast<unsigned long long>(S.MbpCalls),
                 static_cast<unsigned long long>(S.ItpCalls),
                 static_cast<unsigned long long>(S.RefineCalls),
                 static_cast<unsigned long long>(S.Retries));
    if (S.LemmasPublished || S.LemmasImported || S.LemmasRejected ||
        S.CoreShrink)
      std::fprintf(stderr,
                   ";%s lemmas: published=%llu imported=%llu rejected=%llu "
                   "core-shrink=%llu\n",
                   Tag, static_cast<unsigned long long>(S.LemmasPublished),
                   static_cast<unsigned long long>(S.LemmasImported),
                   static_cast<unsigned long long>(S.LemmasRejected),
                   static_cast<unsigned long long>(S.CoreShrink));
  };
  auto PrintError = [](const ErrorInfo &E) {
    if (E.isError())
      std::fprintf(stderr, "; unknown: %s\n", E.describe().c_str());
  };

  std::unique_ptr<ResultStore> Store;
  if (!StoreDir.empty())
    Store = std::make_unique<ResultStore>(StoreDir);

  SolveRequest Base =
      SolveRequest::fromText(Buf.str(), Cli.Opts, Preprocess, Format);
  Base.DeadlineMs = Cli.TimeoutMs;
  Base.WantSolution = PrintSolution;

  if (!Portfolio.empty()) {
    auto Configs = parseConfigList(Portfolio);
    if (!Configs) {
      std::fprintf(stderr, "error: bad portfolio list '%s'\n",
                   Portfolio.c_str());
      usage();
      return 2;
    }
    for (SolverOptions &O : *Configs) {
      O.VerifyResult = Cli.Opts.VerifyResult;
      O.NoIncremental = Cli.Opts.NoIncremental;
      O.MemLimitMb = Cli.Opts.MemLimitMb;
      O.MaxRetries = Cli.Opts.MaxRetries;
      O.MaxRefineSteps = Cli.Opts.MaxRefineSteps;
      O.ChaosSeed = Cli.Opts.ChaosSeed;
      O.ShareLemmas = Cli.Opts.ShareLemmas;
      O.ShareImportBudget = Cli.Opts.ShareImportBudget;
    }

    PortfolioResult PR2 =
        racePortfolio(Base, *Configs, Cli.Jobs, nullptr, Store.get());
    std::printf("%s\n", chcStatusName(PR2.Winner.Status));
    if (PrintSolution && PR2.Winner.Status == ChcStatus::Sat && PR2.WinnerCtx)
      std::fputs(
          Base.Source->solutionText(*PR2.WinnerCtx, PR2.Winner.Invariant)
              .c_str(),
          stdout);
    if (Stats) {
      std::fprintf(stderr, "; portfolio winner=%s wall=%.3fs shared=%llu\n",
                   PR2.WinnerIndex >= 0 ? PR2.WinnerConfig.c_str() : "none",
                   PR2.Seconds,
                   static_cast<unsigned long long>(PR2.SharedLemmas));
      for (const PortfolioMemberReport &M : PR2.Members) {
        std::fprintf(stderr,
                     ";   %-24s %-8s%s%s %8.3fs smt=%llu attempts=%u"
                     " pub=%llu imp=%llu rej=%llu\n",
                     M.Config.c_str(), chcStatusName(M.Status),
                     M.Winner ? " [winner]" : "",
                     M.Cancelled ? " [cancelled]" : "", M.Seconds,
                     static_cast<unsigned long long>(M.Stats.SmtChecks),
                     M.Attempts,
                     static_cast<unsigned long long>(M.Stats.LemmasPublished),
                     static_cast<unsigned long long>(M.Stats.LemmasImported),
                     static_cast<unsigned long long>(M.Stats.LemmasRejected));
        if (M.Error.isError())
          std::fprintf(stderr, ";     error: %s\n",
                       M.Error.describe().c_str());
      }
      PrintStats(" merged", PR2.Winner.Depth, PR2.Seconds, PR2.MergedStats);
    }
    if (PR2.WinnerIndex < 0)
      for (const PortfolioMemberReport &M : PR2.Members)
        PrintError(M.Error);
    return PR2.Winner.Status == ChcStatus::Unknown ? 1 : 0;
  }

  // Single configuration: one unified path for plain solves, retry-ladder
  // solves and store-backed solves.
  SolveResponse Resp = solveRequest(Base, Store.get(), nullptr);
  std::printf("%s\n", chcStatusName(Resp.Status));
  if (PrintSolution && Resp.Status == ChcStatus::Sat)
    std::fputs(Resp.SolutionText.c_str(), stdout);
  if (Stats) {
    if (Resp.Cache != CacheSource::None)
      std::fprintf(stderr, "; cache=%s fingerprint=%s verified=%d\n",
                   cacheSourceName(Resp.Cache), Resp.Fingerprint.c_str(),
                   Resp.CacheVerified ? 1 : 0);
    PrintStats("", Resp.Depth, Resp.Seconds, Resp.Stats);
  }
  PrintError(Resp.Error);
  return Resp.Status == ChcStatus::Unknown ? 1 : 0;
}

int main(int Argc, char **Argv) {
  // Last-resort error boundary: every failure becomes a one-line
  // diagnostic and a distinct exit status, never an uncaught
  // std::terminate.
  try {
    return runMain(Argc, Argv);
  } catch (const MucycError &E) {
    std::fprintf(stderr, "error: %s\n", E.info().describe().c_str());
    return 3;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: uncaught exception: %s\n", E.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "error: uncaught non-standard exception\n");
    return 3;
  }
}
