//===- examples/mucyc_tool.cpp - Command-line CHC solver ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `mucyc` command-line solver: reads an SMT-LIB2 HORN problem, runs a
// configuration (paper names, default Ret(T,MBP(1))), and prints sat/unsat
// plus the witness. With --portfolio, races a comma-separated list of
// configurations on the runtime's thread pool: the first definitive answer
// wins and cooperatively cancels the rest.
//
//   mucyc <file.smt2> [--config NAME] [--timeout-ms N] [--no-preprocess]
//         [--print-solution] [--verify] [--stats]
//         [--portfolio "CFG1,CFG2,..."] [--jobs N] [--no-incremental]
//         [--mem-limit-mb N] [--max-retries N] [--chaos-seed S]
//
// --no-incremental disables the incremental SMT backend (solver pool +
// query cache); every engine query then builds a fresh solver, which is
// the reference semantics the incremental path is differential-tested
// against.
//
// --mem-limit-mb meters term/clause/tableau allocations per solve attempt
// and trips a recoverable resource-exhausted error at the limit;
// --max-retries re-runs recoverable failures with degraded configurations
// (see runtime/Recover.h); --chaos-seed arms the deterministic fault
// injector (testing aid: same seed => same fault schedule).
//
// Exit status: 0 solved (sat/unsat), 1 unknown, 2 usage/input error,
// 3 internal error (a diagnostic line is printed; never an uncaught
// std::terminate).
//
//===----------------------------------------------------------------------===//

#include "chc/Parser.h"
#include "chc/Preprocess.h"
#include "runtime/Portfolio.h"
#include "runtime/Recover.h"
#include "solver/ChcSolve.h"
#include "support/Error.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

using namespace mucyc;

static void usage() {
  std::fprintf(
      stderr,
      "usage: mucyc <file.smt2> [--config NAME] [--timeout-ms N]\n"
      "             [--no-preprocess] [--print-solution] [--verify] "
      "[--stats]\n"
      "             [--portfolio \"CFG1,CFG2,...\"] [--jobs N]\n"
      "             [--no-incremental] [--mem-limit-mb N]\n"
      "             [--max-retries N] [--chaos-seed S]\n"
      "configs: Ret(b,cex) | Yld(b,cex) | SpacerTS(fig1|fig15[,Ulev]) |\n"
      "         Naive | NaiveMbp | Solve, optionally wrapped in\n"
      "         Ind(...) Cex(...) Que(...) Mon(...);\n"
      "         b in {T,F}, cex in {Model, QE, MBP(0|1|2)}\n"
      "--portfolio races the listed configs (first sat/unsat answer wins\n"
      "and cancels the rest); --jobs bounds its concurrency (default:\n"
      "one thread per member)\n");
}

static int runMain(int Argc, char **Argv) {
  if (Argc < 2) {
    usage();
    return 2;
  }
  std::string Path;
  std::string Config = "Ret(T,MBP(1))";
  std::string Portfolio;
  unsigned Jobs = 0;
  uint64_t TimeoutMs = 600000;
  uint64_t MemLimitMb = 0, ChaosSeed = 0;
  unsigned MaxRetries = 0;
  bool Preprocess = true, PrintSolution = false, Verify = false,
       Stats = false, NoIncremental = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--config" && I + 1 < Argc)
      Config = Argv[++I];
    else if (A == "--portfolio" && I + 1 < Argc)
      Portfolio = Argv[++I];
    else if (A == "--jobs" && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (A == "--timeout-ms" && I + 1 < Argc)
      TimeoutMs = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--mem-limit-mb" && I + 1 < Argc)
      MemLimitMb = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--max-retries" && I + 1 < Argc)
      MaxRetries =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (A == "--chaos-seed" && I + 1 < Argc)
      ChaosSeed = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--no-preprocess")
      Preprocess = false;
    else if (A == "--no-incremental")
      NoIncremental = true;
    else if (A == "--print-solution")
      PrintSolution = true;
    else if (A == "--verify")
      Verify = true;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--help") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", A.c_str());
      return 2;
    } else {
      Path = A;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  TermContext Ctx;
  ParseResult PR = parseChc(Ctx, Buf.str());
  if (!PR.Ok) {
    std::fprintf(stderr, "error: parse failed. %s\n", PR.Error.c_str());
    return 2;
  }

  auto PrintDefs = [](const TermContext &C, const ChcSystem &Sys,
                      const ChcSolution &Sol) {
    for (const auto &[Pred, Def] : Sol) {
      std::printf("(define-fun %s (", Sys.pred(Pred).Name.c_str());
      for (size_t I = 0; I < Def.Params.size(); ++I)
        std::printf("%s(%s %s)", I ? " " : "",
                    C.varInfo(Def.Params[I]).Name.c_str(),
                    sortName(C.varInfo(Def.Params[I]).S));
      std::printf(") Bool %s)\n", C.toString(Def.Body).c_str());
    }
  };
  auto PrintStats = [](const char *Tag, int Depth, double Seconds,
                       const SolveStats &S) {
    std::fprintf(stderr,
                 ";%s depth=%d time=%.3fs smt=%llu cache-hits=%llu "
                 "cache-evicts=%llu pool-retires=%llu mbp=%llu itp=%llu "
                 "refines=%llu retries=%llu\n",
                 Tag, Depth, Seconds,
                 static_cast<unsigned long long>(S.SmtChecks),
                 static_cast<unsigned long long>(S.SmtCacheHits),
                 static_cast<unsigned long long>(S.SmtCacheEvicts),
                 static_cast<unsigned long long>(S.PoolRetires),
                 static_cast<unsigned long long>(S.MbpCalls),
                 static_cast<unsigned long long>(S.ItpCalls),
                 static_cast<unsigned long long>(S.RefineCalls),
                 static_cast<unsigned long long>(S.Retries));
  };
  auto PrintError = [](const ErrorInfo &E) {
    if (E.isError())
      std::fprintf(stderr, "; unknown: %s\n", E.describe().c_str());
  };

  // Hash consing is not thread-safe and the retry ladder rebuilds per
  // attempt, so portfolio members and recovery attempts each re-run the
  // whole frontend pipeline (parse, preprocess, normalize) in their own
  // context; the winning context's pipeline is kept for solution lifting.
  struct Pipeline {
    ChcSystem Orig;
    ChcSystem Work;
    NormalizeResult NR;
  };
  std::mutex PipesMu;
  std::map<const TermContext *, std::shared_ptr<Pipeline>> Pipes;
  const std::string Source = Buf.str();
  auto Build = [&](TermContext &C) -> NormalizedChc {
    ParseResult MPR = parseChc(C, Source); // Validated by the parse above.
    ChcSystem Orig = std::move(*MPR.System);
    ChcSystem Work = Preprocess ? preprocess(Orig) : Orig;
    NormalizeResult NR = normalize(Work);
    auto P = std::make_shared<Pipeline>(
        Pipeline{std::move(Orig), std::move(Work), std::move(NR)});
    NormalizedChc Sys = P->NR.Sys;
    std::lock_guard<std::mutex> Lock(PipesMu);
    Pipes[&C] = std::move(P); // Retry attempts may reuse an address.
    return Sys;
  };

  if (!Portfolio.empty()) {
    auto Configs = parseConfigList(Portfolio);
    if (!Configs) {
      std::fprintf(stderr, "error: bad portfolio list '%s'\n",
                   Portfolio.c_str());
      usage();
      return 2;
    }
    for (SolverOptions &O : *Configs) {
      O.VerifyResult = Verify;
      O.NoIncremental = NoIncremental;
      O.MemLimitMb = MemLimitMb;
      O.MaxRetries = MaxRetries;
      O.ChaosSeed = ChaosSeed;
    }

    PortfolioResult PR2 = racePortfolio(Build, *Configs, Jobs, TimeoutMs);
    std::printf("%s\n", chcStatusName(PR2.Winner.Status));
    if (PrintSolution && PR2.Winner.Status == ChcStatus::Sat) {
      const auto &P = Pipes.at(PR2.WinnerCtx.get());
      ChcSolution Sol = P->NR.liftSolution(P->Work, PR2.Winner.Invariant);
      PrintDefs(*PR2.WinnerCtx, P->Orig, Sol);
    }
    if (Stats) {
      std::fprintf(stderr, "; portfolio winner=%s wall=%.3fs\n",
                   PR2.WinnerIndex >= 0 ? PR2.WinnerConfig.c_str() : "none",
                   PR2.Seconds);
      for (const PortfolioMemberReport &M : PR2.Members) {
        std::fprintf(stderr,
                     ";   %-24s %-8s%s%s %8.3fs smt=%llu attempts=%u\n",
                     M.Config.c_str(), chcStatusName(M.Status),
                     M.Winner ? " [winner]" : "",
                     M.Cancelled ? " [cancelled]" : "", M.Seconds,
                     static_cast<unsigned long long>(M.Stats.SmtChecks),
                     M.Attempts);
        if (M.Error.isError())
          std::fprintf(stderr, ";     error: %s\n",
                       M.Error.describe().c_str());
      }
      PrintStats(" merged", PR2.Winner.Depth, PR2.Seconds, PR2.MergedStats);
    }
    if (PR2.WinnerIndex < 0)
      for (const PortfolioMemberReport &M : PR2.Members)
        PrintError(M.Error);
    return PR2.Winner.Status == ChcStatus::Unknown ? 1 : 0;
  }

  auto Opts = SolverOptions::parse(Config);
  if (!Opts) {
    std::fprintf(stderr, "error: unknown configuration '%s'\n",
                 Config.c_str());
    usage();
    return 2;
  }
  Opts->VerifyResult = Verify;
  Opts->NoIncremental = NoIncremental;
  Opts->MemLimitMb = MemLimitMb;
  Opts->MaxRetries = MaxRetries;
  Opts->ChaosSeed = ChaosSeed;

  if (MaxRetries > 0) {
    // Recovery ladder: each attempt rebuilds in a fresh context, so route
    // through the runtime and lift the solution from the final context.
    RecoveryOutcome RO =
        solveWithRecovery(Build, *Opts, TimeoutMs, nullptr);
    std::printf("%s\n", chcStatusName(RO.Res.Status));
    if (PrintSolution && RO.Res.Status == ChcStatus::Sat) {
      const auto &P = Pipes.at(RO.Ctx.get());
      ChcSolution Sol = P->NR.liftSolution(P->Work, RO.Res.Invariant);
      PrintDefs(*RO.Ctx, P->Orig, Sol);
    }
    if (Stats)
      PrintStats("", RO.Res.Depth, RO.Res.Seconds, RO.Res.Stats);
    PrintError(RO.Res.Error);
    return RO.Res.Status == ChcStatus::Unknown ? 1 : 0;
  }

  Opts->TimeoutMs = TimeoutMs;
  ChcSolution Sol;
  SolverResult R = solveChcSystem(*PR.System, *Opts, Preprocess,
                                  PrintSolution ? &Sol : nullptr);
  std::printf("%s\n", chcStatusName(R.Status));
  if (PrintSolution && R.Status == ChcStatus::Sat)
    PrintDefs(Ctx, *PR.System, Sol);
  if (Stats)
    PrintStats("", R.Depth, R.Seconds, R.Stats);
  PrintError(R.Error);
  return R.Status == ChcStatus::Unknown ? 1 : 0;
}

int main(int Argc, char **Argv) {
  // Last-resort error boundary: every failure becomes a one-line
  // diagnostic and a distinct exit status, never an uncaught
  // std::terminate.
  try {
    return runMain(Argc, Argv);
  } catch (const MucycError &E) {
    std::fprintf(stderr, "error: %s\n", E.info().describe().c_str());
    return 3;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: uncaught exception: %s\n", E.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "error: uncaught non-standard exception\n");
    return 3;
  }
}
