//===- examples/mucyc_tool.cpp - Command-line CHC solver ------------------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `mucyc` command-line solver: reads an SMT-LIB2 HORN problem, runs a
// configuration (paper names, default Ret(T,MBP(1))), and prints sat/unsat
// plus the witness.
//
//   mucyc <file.smt2> [--config NAME] [--timeout-ms N] [--no-preprocess]
//         [--print-solution] [--verify] [--stats]
//
//===----------------------------------------------------------------------===//

#include "chc/Parser.h"
#include "solver/ChcSolve.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace mucyc;

static void usage() {
  std::fprintf(
      stderr,
      "usage: mucyc <file.smt2> [--config NAME] [--timeout-ms N]\n"
      "             [--no-preprocess] [--print-solution] [--verify] "
      "[--stats]\n"
      "configs: Ret(b,cex) | Yld(b,cex) | SpacerTS(fig1|fig15[,Ulev]) |\n"
      "         Naive | NaiveMbp | Solve, optionally wrapped in\n"
      "         Ind(...) Cex(...) Que(...) Mon(...);\n"
      "         b in {T,F}, cex in {Model, QE, MBP(0|1|2)}\n");
}

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    usage();
    return 2;
  }
  std::string Path;
  std::string Config = "Ret(T,MBP(1))";
  uint64_t TimeoutMs = 600000;
  bool Preprocess = true, PrintSolution = false, Verify = false,
       Stats = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--config" && I + 1 < Argc)
      Config = Argv[++I];
    else if (A == "--timeout-ms" && I + 1 < Argc)
      TimeoutMs = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--no-preprocess")
      Preprocess = false;
    else if (A == "--print-solution")
      PrintSolution = true;
    else if (A == "--verify")
      Verify = true;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--help") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", A.c_str());
      return 2;
    } else {
      Path = A;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  TermContext Ctx;
  ParseResult PR = parseChc(Ctx, Buf.str());
  if (!PR.Ok) {
    std::fprintf(stderr, "error: parse failed. %s\n", PR.Error.c_str());
    return 2;
  }

  auto Opts = SolverOptions::parse(Config);
  if (!Opts) {
    std::fprintf(stderr, "error: unknown configuration '%s'\n",
                 Config.c_str());
    usage();
    return 2;
  }
  Opts->TimeoutMs = TimeoutMs;
  Opts->VerifyResult = Verify;

  ChcSolution Sol;
  SolverResult R = solveChcSystem(*PR.System, *Opts, Preprocess,
                                  PrintSolution ? &Sol : nullptr);
  std::printf("%s\n", chcStatusName(R.Status));
  if (PrintSolution && R.Status == ChcStatus::Sat) {
    for (const auto &[Pred, Def] : Sol) {
      std::printf("(define-fun %s (",
                  PR.System->pred(Pred).Name.c_str());
      for (size_t I = 0; I < Def.Params.size(); ++I)
        std::printf("%s(%s %s)", I ? " " : "",
                    Ctx.varInfo(Def.Params[I]).Name.c_str(),
                    sortName(Ctx.varInfo(Def.Params[I]).S));
      std::printf(") Bool %s)\n", Ctx.toString(Def.Body).c_str());
    }
  }
  if (Stats)
    std::fprintf(stderr,
                 "; depth=%d time=%.3fs smt=%llu mbp=%llu itp=%llu "
                 "refines=%llu\n",
                 R.Depth, R.Seconds,
                 static_cast<unsigned long long>(R.Stats.SmtChecks),
                 static_cast<unsigned long long>(R.Stats.MbpCalls),
                 static_cast<unsigned long long>(R.Stats.ItpCalls),
                 static_cast<unsigned long long>(R.Stats.RefineCalls));
  return R.Status == ChcStatus::Unknown ? 1 : 0;
}
