//===- examples/loop_verifier.cpp - Verifying while-loops with mucyc ------===//
//
// Part of the mucyc project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A miniature front end: programs of the shape
//
//     init;  while (guard) { update; }  assert(post);
//
// over integer variables are translated into the paper's normalized form
// (Section 2.1) and checked with several solver configurations. This is the
// classical safety-verification-to-CHC reduction from the introduction of
// the paper.
//
//===----------------------------------------------------------------------===//

#include "chc/Normalize.h"
#include "solver/ChcSolve.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace mucyc;

namespace {

/// A loop program over named integer variables. Formulas are built against
/// the provided current/next tuples.
struct LoopProgram {
  std::string Name;
  std::vector<std::string> Vars;
  /// init(state).
  std::function<TermRef(TermContext &, const std::vector<TermRef> &)> Init;
  /// body(state, state') — guard plus update, one loop iteration.
  std::function<TermRef(TermContext &, const std::vector<TermRef> &,
                        const std::vector<TermRef> &)>
      Body;
  /// post(state) — must hold in every reachable state.
  std::function<TermRef(TermContext &, const std::vector<TermRef> &)> Post;
  bool ExpectedSafe;
};

/// Translates a loop program into the normalized CHC form: the y tuple is
/// unconstrained, which encodes a linear system.
NormalizedChc toChc(TermContext &Ctx, const LoopProgram &P) {
  std::vector<VarId> X, Y, Z;
  std::vector<TermRef> Xt, Yt, Zt;
  for (const std::string &V : P.Vars) {
    TermRef XV = Ctx.mkVar(P.Name + "!x!" + V, Sort::Int);
    TermRef YV = Ctx.mkVar(P.Name + "!y!" + V, Sort::Int);
    TermRef ZV = Ctx.mkVar(P.Name + "!z!" + V, Sort::Int);
    X.push_back(Ctx.node(XV).Var);
    Y.push_back(Ctx.node(YV).Var);
    Z.push_back(Ctx.node(ZV).Var);
    Xt.push_back(XV);
    Yt.push_back(YV);
    Zt.push_back(ZV);
  }
  return makeNormalized(Ctx, X, Y, Z, P.Init(Ctx, Zt), P.Body(Ctx, Xt, Zt),
                        Ctx.mkNot(P.Post(Ctx, Zt)));
}

} // namespace

int main() {
  std::vector<LoopProgram> Programs;

  // sum = 0; i = 0; while (i < n-ish) { sum += i; i++; }  assert(sum >= 0).
  Programs.push_back(LoopProgram{
      "sum_nonneg",
      {"i", "sum"},
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkAnd(C.mkEq(S[0], C.mkIntConst(0)),
                       C.mkEq(S[1], C.mkIntConst(0)));
      },
      [](TermContext &C, const std::vector<TermRef> &S,
         const std::vector<TermRef> &N) {
        return C.mkAnd({C.mkGe(S[0], C.mkIntConst(0)),
                        C.mkEq(N[0], C.mkAdd(S[0], C.mkIntConst(1))),
                        C.mkEq(N[1], C.mkAdd(S[1], S[0]))});
      },
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkGe(S[1], C.mkIntConst(0));
      },
      /*ExpectedSafe=*/true});

  // x = 12; while (x > 0) x -= 2;  assert(x != -1). The safety argument is
  // parity; with a small start value the engines converge by enumeration,
  // while large start values need a divisibility lemma (a known-hard shape
  // for interval-lemma PDR, including Spacer itself).
  Programs.push_back(LoopProgram{
      "even_countdown",
      {"x"},
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkEq(S[0], C.mkIntConst(12));
      },
      [](TermContext &C, const std::vector<TermRef> &S,
         const std::vector<TermRef> &N) {
        return C.mkAnd(C.mkGt(S[0], C.mkIntConst(0)),
                       C.mkEq(N[0], C.mkSub(S[0], C.mkIntConst(2))));
      },
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkNot(C.mkEq(S[0], C.mkIntConst(-1)));
      },
      /*ExpectedSafe=*/true});

  // x = 0; y = 10; while (x < y) { x++; y--; }  assert(x <= 10): safe.
  Programs.push_back(LoopProgram{
      "converge",
      {"x", "y"},
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkAnd(C.mkEq(S[0], C.mkIntConst(0)),
                       C.mkEq(S[1], C.mkIntConst(10)));
      },
      [](TermContext &C, const std::vector<TermRef> &S,
         const std::vector<TermRef> &N) {
        return C.mkAnd({C.mkLt(S[0], S[1]),
                        C.mkEq(N[0], C.mkAdd(S[0], C.mkIntConst(1))),
                        C.mkEq(N[1], C.mkSub(S[1], C.mkIntConst(1)))});
      },
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkLe(S[0], C.mkIntConst(10));
      },
      /*ExpectedSafe=*/true});

  // Buggy program: off-by-one makes x reach 6. assert(x <= 5): unsafe.
  Programs.push_back(LoopProgram{
      "off_by_one",
      {"x"},
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkEq(S[0], C.mkIntConst(0));
      },
      [](TermContext &C, const std::vector<TermRef> &S,
         const std::vector<TermRef> &N) {
        return C.mkAnd(C.mkLe(S[0], C.mkIntConst(5)),
                       C.mkEq(N[0], C.mkAdd(S[0], C.mkIntConst(1))));
      },
      [](TermContext &C, const std::vector<TermRef> &S) {
        return C.mkLe(S[0], C.mkIntConst(5));
      },
      /*ExpectedSafe=*/false});

  const char *Configs[] = {"Ret(T,MBP(1))", "Yld(T,MBP(1))", "SpacerTS(fig1)"};
  int Failures = 0;
  for (const LoopProgram &P : Programs) {
    std::printf("== %s (expected %s)\n", P.Name.c_str(),
                P.ExpectedSafe ? "safe" : "unsafe");
    for (const char *Cfg : Configs) {
      TermContext Ctx;
      NormalizedChc N = toChc(Ctx, P);
      SolverOptions Opts = *SolverOptions::parse(Cfg);
      Opts.TimeoutMs = 20000;
      Opts.VerifyResult = true;
      SolverResult R = ChcSolver(Ctx, N, Opts).solve();
      bool Correct =
          (R.Status == ChcStatus::Sat) == P.ExpectedSafe &&
          R.Status != ChcStatus::Unknown;
      std::printf("   %-16s -> %-7s depth=%d  %.3fs  %s\n", Cfg,
                  chcStatusName(R.Status), R.Depth, R.Seconds,
                  Correct ? "" : (R.Status == ChcStatus::Unknown
                                      ? "(timeout)"
                                      : "** MISMATCH **"));
      if (!Correct && R.Status != ChcStatus::Unknown)
        ++Failures;
      if (R.Status == ChcStatus::Sat && Cfg == Configs[0])
        std::printf("   invariant: %s\n",
                    Ctx.toString(R.Invariant).c_str());
    }
  }
  return Failures;
}
