file(REMOVE_RECURSE
  "CMakeFiles/recursive_functions.dir/recursive_functions.cpp.o"
  "CMakeFiles/recursive_functions.dir/recursive_functions.cpp.o.d"
  "recursive_functions"
  "recursive_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
