# Empty compiler generated dependencies file for recursive_functions.
# This may be replaced when dependencies are built.
