# Empty compiler generated dependencies file for loop_verifier.
# This may be replaced when dependencies are built.
