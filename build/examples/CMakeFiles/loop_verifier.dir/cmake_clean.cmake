file(REMOVE_RECURSE
  "CMakeFiles/loop_verifier.dir/loop_verifier.cpp.o"
  "CMakeFiles/loop_verifier.dir/loop_verifier.cpp.o.d"
  "loop_verifier"
  "loop_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
