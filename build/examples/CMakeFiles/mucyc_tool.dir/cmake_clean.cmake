file(REMOVE_RECURSE
  "CMakeFiles/mucyc_tool.dir/mucyc_tool.cpp.o"
  "CMakeFiles/mucyc_tool.dir/mucyc_tool.cpp.o.d"
  "mucyc"
  "mucyc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mucyc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
