# Empty dependencies file for mucyc_tool.
# This may be replaced when dependencies are built.
