# Empty dependencies file for mucyc_tests.
# This may be replaced when dependencies are built.
