
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BigIntTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/BigIntTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/BigIntTest.cpp.o.d"
  "/root/repo/tests/ChcTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/ChcTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/ChcTest.cpp.o.d"
  "/root/repo/tests/CompletenessTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/CompletenessTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/CompletenessTest.cpp.o.d"
  "/root/repo/tests/EngineTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/EngineTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/EngineTest.cpp.o.d"
  "/root/repo/tests/ExportTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/ExportTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/ExportTest.cpp.o.d"
  "/root/repo/tests/ItpTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/ItpTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/ItpTest.cpp.o.d"
  "/root/repo/tests/LinearTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/LinearTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/LinearTest.cpp.o.d"
  "/root/repo/tests/MbpTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/MbpTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/MbpTest.cpp.o.d"
  "/root/repo/tests/NormalizeTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/NormalizeTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/NormalizeTest.cpp.o.d"
  "/root/repo/tests/OptionsTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/OptionsTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/OptionsTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PreprocessTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/PreprocessTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/PreprocessTest.cpp.o.d"
  "/root/repo/tests/QeTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/QeTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/QeTest.cpp.o.d"
  "/root/repo/tests/RationalTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/RationalTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/RationalTest.cpp.o.d"
  "/root/repo/tests/SatSolverTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/SatSolverTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/SatSolverTest.cpp.o.d"
  "/root/repo/tests/SimplexTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/SimplexTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/SimplexTest.cpp.o.d"
  "/root/repo/tests/SmtSolverTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/SmtSolverTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/SmtSolverTest.cpp.o.d"
  "/root/repo/tests/SolverTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/SolverTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/SolverTest.cpp.o.d"
  "/root/repo/tests/SpacerTsTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/SpacerTsTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/SpacerTsTest.cpp.o.d"
  "/root/repo/tests/SuiteTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/SuiteTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/SuiteTest.cpp.o.d"
  "/root/repo/tests/TermTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/TermTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/TermTest.cpp.o.d"
  "/root/repo/tests/TraceTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/TraceTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/TraceTest.cpp.o.d"
  "/root/repo/tests/VerifyTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/VerifyTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/VerifyTest.cpp.o.d"
  "/root/repo/tests/YieldTest.cpp" "tests/CMakeFiles/mucyc_tests.dir/YieldTest.cpp.o" "gcc" "tests/CMakeFiles/mucyc_tests.dir/YieldTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mucyc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
