# Empty dependencies file for mucyc.
# This may be replaced when dependencies are built.
