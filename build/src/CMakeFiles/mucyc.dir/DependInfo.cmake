
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_suite/Suite.cpp" "src/CMakeFiles/mucyc.dir/bench_suite/Suite.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/bench_suite/Suite.cpp.o.d"
  "/root/repo/src/chc/Chc.cpp" "src/CMakeFiles/mucyc.dir/chc/Chc.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/chc/Chc.cpp.o.d"
  "/root/repo/src/chc/Export.cpp" "src/CMakeFiles/mucyc.dir/chc/Export.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/chc/Export.cpp.o.d"
  "/root/repo/src/chc/Normalize.cpp" "src/CMakeFiles/mucyc.dir/chc/Normalize.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/chc/Normalize.cpp.o.d"
  "/root/repo/src/chc/Parser.cpp" "src/CMakeFiles/mucyc.dir/chc/Parser.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/chc/Parser.cpp.o.d"
  "/root/repo/src/chc/Preprocess.cpp" "src/CMakeFiles/mucyc.dir/chc/Preprocess.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/chc/Preprocess.cpp.o.d"
  "/root/repo/src/itp/Interpolate.cpp" "src/CMakeFiles/mucyc.dir/itp/Interpolate.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/itp/Interpolate.cpp.o.d"
  "/root/repo/src/mbp/Cube.cpp" "src/CMakeFiles/mucyc.dir/mbp/Cube.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/mbp/Cube.cpp.o.d"
  "/root/repo/src/mbp/Mbp.cpp" "src/CMakeFiles/mucyc.dir/mbp/Mbp.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/mbp/Mbp.cpp.o.d"
  "/root/repo/src/mbp/MbpLia.cpp" "src/CMakeFiles/mucyc.dir/mbp/MbpLia.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/mbp/MbpLia.cpp.o.d"
  "/root/repo/src/mbp/MbpLra.cpp" "src/CMakeFiles/mucyc.dir/mbp/MbpLra.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/mbp/MbpLra.cpp.o.d"
  "/root/repo/src/mbp/Qe.cpp" "src/CMakeFiles/mucyc.dir/mbp/Qe.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/mbp/Qe.cpp.o.d"
  "/root/repo/src/smt/Cnf.cpp" "src/CMakeFiles/mucyc.dir/smt/Cnf.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/smt/Cnf.cpp.o.d"
  "/root/repo/src/smt/Model.cpp" "src/CMakeFiles/mucyc.dir/smt/Model.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/smt/Model.cpp.o.d"
  "/root/repo/src/smt/SatSolver.cpp" "src/CMakeFiles/mucyc.dir/smt/SatSolver.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/smt/SatSolver.cpp.o.d"
  "/root/repo/src/smt/Simplex.cpp" "src/CMakeFiles/mucyc.dir/smt/Simplex.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/smt/Simplex.cpp.o.d"
  "/root/repo/src/smt/SmtSolver.cpp" "src/CMakeFiles/mucyc.dir/smt/SmtSolver.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/smt/SmtSolver.cpp.o.d"
  "/root/repo/src/smt/TheoryLia.cpp" "src/CMakeFiles/mucyc.dir/smt/TheoryLia.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/smt/TheoryLia.cpp.o.d"
  "/root/repo/src/solver/ChcSolve.cpp" "src/CMakeFiles/mucyc.dir/solver/ChcSolve.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/ChcSolve.cpp.o.d"
  "/root/repo/src/solver/IndSpacer.cpp" "src/CMakeFiles/mucyc.dir/solver/IndSpacer.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/IndSpacer.cpp.o.d"
  "/root/repo/src/solver/Options.cpp" "src/CMakeFiles/mucyc.dir/solver/Options.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/Options.cpp.o.d"
  "/root/repo/src/solver/RefineNaive.cpp" "src/CMakeFiles/mucyc.dir/solver/RefineNaive.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/RefineNaive.cpp.o.d"
  "/root/repo/src/solver/RefineNaiveMbp.cpp" "src/CMakeFiles/mucyc.dir/solver/RefineNaiveMbp.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/RefineNaiveMbp.cpp.o.d"
  "/root/repo/src/solver/SolveBaseline.cpp" "src/CMakeFiles/mucyc.dir/solver/SolveBaseline.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/SolveBaseline.cpp.o.d"
  "/root/repo/src/solver/SpacerTs.cpp" "src/CMakeFiles/mucyc.dir/solver/SpacerTs.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/SpacerTs.cpp.o.d"
  "/root/repo/src/solver/Trace.cpp" "src/CMakeFiles/mucyc.dir/solver/Trace.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/Trace.cpp.o.d"
  "/root/repo/src/solver/Verify.cpp" "src/CMakeFiles/mucyc.dir/solver/Verify.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/Verify.cpp.o.d"
  "/root/repo/src/solver/YieldSpacer.cpp" "src/CMakeFiles/mucyc.dir/solver/YieldSpacer.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/solver/YieldSpacer.cpp.o.d"
  "/root/repo/src/support/BigInt.cpp" "src/CMakeFiles/mucyc.dir/support/BigInt.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/support/BigInt.cpp.o.d"
  "/root/repo/src/support/Rational.cpp" "src/CMakeFiles/mucyc.dir/support/Rational.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/support/Rational.cpp.o.d"
  "/root/repo/src/term/Eval.cpp" "src/CMakeFiles/mucyc.dir/term/Eval.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/term/Eval.cpp.o.d"
  "/root/repo/src/term/Linear.cpp" "src/CMakeFiles/mucyc.dir/term/Linear.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/term/Linear.cpp.o.d"
  "/root/repo/src/term/Print.cpp" "src/CMakeFiles/mucyc.dir/term/Print.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/term/Print.cpp.o.d"
  "/root/repo/src/term/Sort.cpp" "src/CMakeFiles/mucyc.dir/term/Sort.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/term/Sort.cpp.o.d"
  "/root/repo/src/term/Term.cpp" "src/CMakeFiles/mucyc.dir/term/Term.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/term/Term.cpp.o.d"
  "/root/repo/src/term/TermContext.cpp" "src/CMakeFiles/mucyc.dir/term/TermContext.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/term/TermContext.cpp.o.d"
  "/root/repo/src/term/TermOps.cpp" "src/CMakeFiles/mucyc.dir/term/TermOps.cpp.o" "gcc" "src/CMakeFiles/mucyc.dir/term/TermOps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
