file(REMOVE_RECURSE
  "libmucyc.a"
)
