# Empty dependencies file for rc_tricks.
# This may be replaced when dependencies are built.
