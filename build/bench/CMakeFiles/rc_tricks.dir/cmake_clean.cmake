file(REMOVE_RECURSE
  "CMakeFiles/rc_tricks.dir/rc_tricks.cpp.o"
  "CMakeFiles/rc_tricks.dir/rc_tricks.cpp.o.d"
  "rc_tricks"
  "rc_tricks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_tricks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
