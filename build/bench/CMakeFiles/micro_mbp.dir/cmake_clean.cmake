file(REMOVE_RECURSE
  "CMakeFiles/micro_mbp.dir/micro_mbp.cpp.o"
  "CMakeFiles/micro_mbp.dir/micro_mbp.cpp.o.d"
  "micro_mbp"
  "micro_mbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
