# Empty dependencies file for micro_mbp.
# This may be replaced when dependencies are built.
