# Empty compiler generated dependencies file for fig2_cactus.
# This may be replaced when dependencies are built.
