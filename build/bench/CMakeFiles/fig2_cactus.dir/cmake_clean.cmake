file(REMOVE_RECURSE
  "CMakeFiles/fig2_cactus.dir/fig2_cactus.cpp.o"
  "CMakeFiles/fig2_cactus.dir/fig2_cactus.cpp.o.d"
  "fig2_cactus"
  "fig2_cactus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
