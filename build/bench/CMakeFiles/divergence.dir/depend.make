# Empty dependencies file for divergence.
# This may be replaced when dependencies are built.
