file(REMOVE_RECURSE
  "CMakeFiles/divergence.dir/divergence.cpp.o"
  "CMakeFiles/divergence.dir/divergence.cpp.o.d"
  "divergence"
  "divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
