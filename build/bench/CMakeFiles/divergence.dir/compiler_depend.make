# Empty compiler generated dependencies file for divergence.
# This may be replaced when dependencies are built.
