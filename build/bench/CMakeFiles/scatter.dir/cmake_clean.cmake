file(REMOVE_RECURSE
  "CMakeFiles/scatter.dir/scatter.cpp.o"
  "CMakeFiles/scatter.dir/scatter.cpp.o.d"
  "scatter"
  "scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
