# Empty compiler generated dependencies file for scatter.
# This may be replaced when dependencies are built.
