# Empty dependencies file for micro_itp.
# This may be replaced when dependencies are built.
