file(REMOVE_RECURSE
  "CMakeFiles/micro_itp.dir/micro_itp.cpp.o"
  "CMakeFiles/micro_itp.dir/micro_itp.cpp.o.d"
  "micro_itp"
  "micro_itp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_itp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
